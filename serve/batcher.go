package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mnn"
	"mnn/internal/tensor"
	"mnn/serve/admission"
)

// DefaultMaxBuckets is the shape-bucket bound used when BatchConfig enables
// batching without choosing one.
const DefaultMaxBuckets = 4

// maxFailedSigs bounds the memo of shape signatures whose batch engine
// failed to open, so a hostile mix of unpreparable shapes cannot grow it
// without bound. Overflowing signatures just retry the open.
const maxFailedSigs = 64

// errNoBucket is the scheduler's internal "cannot give this request a
// bucket" answer (bucket table full of busy buckets, or a signature whose
// engine is known not to open). infer translates it into a fall-through to
// the unbatched engine; it never escapes to callers.
var errNoBucket = errors.New("serve: no batch bucket available")

// batcher implements shape-bucketed continuous batching for one model.
// Concurrent single-sample requests are keyed by their input-shape
// signature into buckets, each holding a lazily opened engine prepared at
// batch size maxBatch for that bucket's shapes. A scheduler goroutine cuts
// a bucket's queue into a batch when it fills or when its oldest request's
// window (bounded by the request's effective deadline) expires, orders
// ready batches earliest-deadline-first, and hands them to two dispatch
// workers — so the next batch stacks while the previous one computes.
// Partial batches run on the bucket engine via pad-and-mask: unused slots
// stay zero and only live slots are split back out, which preserves the
// batched≡unbatched bitwise guarantee because every kernel is per-sample.
//
// The bucket of the model's declared input shapes (the primary bucket) is
// opened eagerly so load-time validation errors still surface at Load.
// Other buckets open on their first flush and are evicted least-recently-
// used when the table exceeds maxBuckets; requests that cannot get a
// bucket fall through to the unbatched engine.
//
// Dynamic mode: when the model's unbatched engine was opened with
// WithMaxInputShapes, one shared batch engine planned at
// [maxBatch, maxDims...] serves every bucket. Buckets keep their role as
// exact-shape queues (stacking only identical shapes preserves the
// batched≡unbatched bitwise guarantee per bucket) but own no engine: their
// lazy step is a batch-1 probe through the shared engine to learn output
// shapes, batches stack at their exact member count (no padding — the
// dynamic engine accepts any leading dim <= maxBatch), and eviction is pure
// bookkeeping that never closes the shared engine.
type batcher struct {
	fallback   *mnn.Engine // the model's unbatched engine (not owned)
	cfg        ModelConfig // source + options for opening bucket engines
	maxBatch   int
	maxLatency time.Duration
	maxBuckets int
	slo        time.Duration // admission SLO; bounds effective deadlines

	// dynamic mode (see type comment): shared is the one batch engine
	// (owned), dynMax the fallback's per-request planned maxima.
	dynamic bool
	dynMax  map[string][]int
	shared  *mnn.Engine

	inputNames  []string
	outputNames []string
	primary     *bucket

	hooks batcherHooks

	reqs     chan *batchReq
	dispatch chan *batch
	kick     chan struct{}
	quit     chan struct{}
	done     chan struct{}
	workers  sync.WaitGroup
	closers  sync.WaitGroup // async engine closes from evictions

	// mu guards the bucket table, the failed-signature memo, and every
	// bucket's queue/usage fields.
	mu      sync.Mutex
	buckets map[string]*bucket
	failed  map[string]error

	batchRuns atomic.Int64 // bucket-engine invocations (tests, stats)
	evictions atomic.Int64
}

// batcherHooks are the Model-side observers a batcher reports into. Any
// field may be nil.
type batcherHooks struct {
	// onFlush observes every dispatched batch with its request count
	// (metrics: cumulative batch-fill ratio).
	onFlush func(n int)
	// noteBytes reports ±deltas of dynamically opened bucket-engine bytes
	// (the primary bucket is counted by the model's load accounting).
	noteBytes func(delta int64)
	// onEvict observes one bucket eviction.
	onEvict func()
}

// bucket is one shape signature's queue plus its batch-prepared engine.
type bucket struct {
	sig     string
	primary bool

	perShape   map[string][]int
	perLen     map[string]int
	batchShape map[string][]int
	outShape   map[string][]int // per-request output shape (dim0 == 1)
	outLen     map[string]int

	// openMu serializes the lazy engine open (or, in dynamic mode, the
	// batch-1 output probe) across dispatch workers. Nothing that holds
	// batcher.mu may block on openMu: an engine open can take arbitrarily
	// long, and the scheduler's intake path lives under batcher.mu —
	// readers that only need "is the engine resident" use the resident
	// flag instead.
	openMu  sync.Mutex
	eng     *mnn.Engine
	bytes   int64
	openErr error
	// resident mirrors "this bucket is ready to serve batches" (engine
	// open, or probe done in dynamic mode) without requiring openMu.
	resident atomic.Bool

	// Guarded by batcher.mu:
	pending  []*batchReq
	busy     int // batches cut but not yet finished (blocks eviction)
	lastUsed time.Time
	flushes  uint64
	samples  uint64
}

type batchReq struct {
	ctx     context.Context
	inputs  map[string]*mnn.Tensor
	sig     string
	arrival time.Time
	// deadline is the request's effective deadline (admission's rule: the
	// earlier of the ctx deadline and arrival+SLO); zero means unbounded.
	deadline time.Time
	resp     chan batchResp
}

// due is when this request forces its bucket to flush: the end of the
// batching window, pulled earlier for requests whose effective deadline
// cannot afford the full window (they keep their remaining budget for the
// actual run instead of rotting in the queue).
func (rq *batchReq) due(window time.Duration) time.Time {
	d := rq.arrival.Add(window)
	if !rq.deadline.IsZero() {
		if early := rq.deadline.Add(-window); early.Before(d) {
			d = early
		}
		if d.Before(rq.arrival) {
			d = rq.arrival
		}
	}
	return d
}

// edfKey orders ready batches: the effective deadline where one exists,
// otherwise the window end.
func (rq *batchReq) edfKey(window time.Duration) time.Time {
	if !rq.deadline.IsZero() {
		return rq.deadline
	}
	return rq.arrival.Add(window)
}

type batchResp struct {
	outputs map[string]*mnn.Tensor
	err     error
}

// batch is one cut bucket queue on its way through dispatch.
type batch struct {
	bkt  *bucket
	reqs []*batchReq
	due  time.Time // earliest edfKey among members
}

// newBatcher builds the scheduler and opens the primary bucket (the
// model's declared input shapes) eagerly, probing it once so output shapes
// are known to be splittable along N before any traffic arrives.
func newBatcher(cfg ModelConfig, fallback *mnn.Engine, hooks batcherHooks) (*batcher, error) {
	b := &batcher{
		fallback:   fallback,
		cfg:        cfg,
		maxBatch:   cfg.Batch.MaxBatch,
		maxLatency: cfg.Batch.MaxLatency,
		maxBuckets: cfg.Batch.Buckets,
		slo:        cfg.Admission.SLO,
		hooks:      hooks,
		inputNames: fallback.InputNames(),
		reqs:       make(chan *batchReq),
		dispatch:   make(chan *batch),
		kick:       make(chan struct{}, 1),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
		buckets:    make(map[string]*bucket),
		failed:     make(map[string]error),
	}
	if b.maxLatency <= 0 {
		b.maxLatency = DefaultMaxLatency
	}
	if b.maxBuckets <= 0 {
		b.maxBuckets = DefaultMaxBuckets
	}
	b.outputNames = fallback.OutputNames()
	shapes := make(map[string][]int, len(b.inputNames))
	for _, name := range b.inputNames {
		s := fallback.InputShape(name)
		if len(s) == 0 || s[0] != 1 {
			return nil, fmt.Errorf("input %q has shape %v: batching needs a leading batch dim of 1", name, s)
		}
		shapes[name] = s
	}
	if ds := fallback.DynamicShapes(); ds != nil {
		b.dynamic = true
		b.dynMax = ds
		if err := b.openShared(); err != nil {
			return nil, err
		}
	}
	b.primary = b.newBucket(signatureOf(b.inputNames, shapes), shapes)
	b.primary.primary = true
	if err := b.ensureEngine(b.primary); err != nil {
		if b.shared != nil {
			b.shared.Close()
		}
		return nil, err
	}
	b.buckets[b.primary.sig] = b.primary
	b.workers.Add(2)
	go b.worker()
	go b.worker()
	go b.loop()
	return b, nil
}

// primaryBytes is the eagerly opened primary bucket engine's byte
// accounting (counted by the model's load, unlike dynamic buckets). In
// dynamic mode it is the shared engine — the only batch engine there is.
func (b *batcher) primaryBytes() int64 {
	if b.dynamic {
		return b.shared.MemoryBytes()
	}
	return b.primary.bytes
}

// openShared opens the one batch engine of dynamic mode, planned at
// [maxBatch, per-request maxima...], and probes it at the full batch shape
// so "outputs cannot split along dim 0" still fails at Load time. Pool of
// 2 matches the two dispatch workers: batches from different buckets run
// concurrently, just as two static bucket engines would.
func (b *batcher) openShared() error {
	shapes := make(map[string][]int, len(b.inputNames))
	for _, name := range b.inputNames {
		max := b.dynMax[name]
		if len(max) == 0 || max[0] != 1 {
			return fmt.Errorf("input %q has planned max shape %v: batching needs a leading batch dim of 1", name, max)
		}
		shapes[name] = append([]int{b.maxBatch}, max[1:]...)
	}
	eng, err := mnn.Open(b.cfg.Model, append(append([]mnn.Option(nil), b.cfg.Options...),
		mnn.WithMaxInputShapes(shapes), mnn.WithPoolSize(2))...)
	if err != nil {
		return fmt.Errorf("opening shared dynamic batch-%d engine: %w", b.maxBatch, err)
	}
	probe := make(map[string]*mnn.Tensor, len(b.inputNames))
	for name, s := range shapes {
		probe[name] = tensor.New(s...)
	}
	out, err := eng.Infer(context.Background(), probe)
	if err != nil {
		eng.Close()
		return fmt.Errorf("probing shared dynamic batch-%d engine: %w", b.maxBatch, err)
	}
	for _, name := range b.outputNames {
		if s := out[name].Shape(); len(s) == 0 || s[0] != b.maxBatch {
			eng.Close()
			return fmt.Errorf("output %q has batched shape %v: cannot split %d requests along dim 0", name, s, b.maxBatch)
		}
	}
	b.shared = eng
	return nil
}

// engineFor resolves the engine a bucket's batches run on.
func (b *batcher) engineFor(bkt *bucket) *mnn.Engine {
	if b.dynamic {
		return b.shared
	}
	return bkt.eng
}

// newBucket builds the bookkeeping for one signature; the engine opens on
// first flush (ensureEngine).
func (b *batcher) newBucket(sig string, shapes map[string][]int) *bucket {
	bkt := &bucket{
		sig:        sig,
		perShape:   make(map[string][]int, len(b.inputNames)),
		perLen:     make(map[string]int, len(b.inputNames)),
		batchShape: make(map[string][]int, len(b.inputNames)),
		outShape:   make(map[string][]int, len(b.outputNames)),
		outLen:     make(map[string]int, len(b.outputNames)),
		lastUsed:   time.Now(),
	}
	for _, name := range b.inputNames {
		per := append([]int(nil), shapes[name]...)
		bkt.perShape[name] = per
		bkt.perLen[name] = tensor.NumElements(per)
		bkt.batchShape[name] = append([]int{b.maxBatch}, per[1:]...)
	}
	return bkt
}

// ensureEngine makes the bucket ready to serve batches. Static mode opens
// (once) the bucket's own batch engine and probes it with zeros to learn
// the output slots; dynamic mode only runs the batch-1 output probe through
// the shared engine. Serialized per bucket; a failure is sticky so every
// queued batch of the bucket falls back instead of re-paying the attempt.
func (b *batcher) ensureEngine(bkt *bucket) error {
	if b.dynamic {
		return b.probeDynamic(bkt)
	}
	bkt.openMu.Lock()
	defer bkt.openMu.Unlock()
	if bkt.eng != nil {
		return nil
	}
	if bkt.openErr != nil {
		return bkt.openErr
	}
	shapes := make(map[string][]int, len(bkt.batchShape))
	for name, s := range bkt.batchShape {
		shapes[name] = s
	}
	eng, err := mnn.Open(b.cfg.Model, append(append([]mnn.Option(nil), b.cfg.Options...),
		mnn.WithInputShapes(shapes), mnn.WithPoolSize(1))...)
	if err != nil {
		bkt.openErr = fmt.Errorf("opening batch-%d engine for bucket %s: %w", b.maxBatch, bkt.sig, err)
		return bkt.openErr
	}
	probe := make(map[string]*mnn.Tensor, len(b.inputNames))
	for _, name := range b.inputNames {
		probe[name] = tensor.New(bkt.batchShape[name]...)
	}
	out, err := eng.Infer(context.Background(), probe)
	if err != nil {
		eng.Close()
		bkt.openErr = fmt.Errorf("probing batch-%d engine for bucket %s: %w", b.maxBatch, bkt.sig, err)
		return bkt.openErr
	}
	for _, name := range b.outputNames {
		s := out[name].Shape()
		if len(s) == 0 || s[0] != b.maxBatch {
			eng.Close()
			bkt.openErr = fmt.Errorf("output %q has batched shape %v: cannot split %d requests along dim 0", name, s, b.maxBatch)
			return bkt.openErr
		}
		per := append([]int{1}, s[1:]...)
		bkt.outShape[name] = per
		bkt.outLen[name] = tensor.NumElements(per)
	}
	bkt.eng = eng
	bkt.bytes = eng.MemoryBytes()
	bkt.resident.Store(true)
	if !bkt.primary && b.hooks.noteBytes != nil {
		b.hooks.noteBytes(bkt.bytes)
	}
	return nil
}

// probeDynamic learns the bucket's per-request output shapes with one
// batch-1 zero run through the shared engine. The shared engine validates
// the shape against its plan, so an out-of-plan signature that slipped past
// the intake check fails here (sticky) and its requests fall back.
func (b *batcher) probeDynamic(bkt *bucket) error {
	bkt.openMu.Lock()
	defer bkt.openMu.Unlock()
	if bkt.resident.Load() {
		return nil
	}
	if bkt.openErr != nil {
		return bkt.openErr
	}
	probe := make(map[string]*mnn.Tensor, len(b.inputNames))
	for _, name := range b.inputNames {
		probe[name] = tensor.New(bkt.perShape[name]...)
	}
	out, err := b.shared.Infer(context.Background(), probe)
	if err != nil {
		bkt.openErr = fmt.Errorf("probing bucket %s on the shared dynamic engine: %w", bkt.sig, err)
		return bkt.openErr
	}
	for _, name := range b.outputNames {
		s := out[name].Shape()
		if len(s) == 0 || s[0] != 1 {
			bkt.openErr = fmt.Errorf("output %q has shape %v at batch 1: cannot stack along dim 0", name, s)
			return bkt.openErr
		}
		bkt.outShape[name] = append([]int(nil), s...)
		bkt.outLen[name] = tensor.NumElements(s)
	}
	bkt.resident.Store(true)
	return nil
}

// signatureOf renders the canonical bucket key of a shape set, e.g.
// "data=1x3x16x16" (multiple inputs joined by ";" in declared order).
func signatureOf(names []string, shapes map[string][]int) string {
	var sb strings.Builder
	for i, name := range names {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(name)
		sb.WriteByte('=')
		for j, d := range shapes[name] {
			if j > 0 {
				sb.WriteByte('x')
			}
			sb.WriteString(strconv.Itoa(d))
		}
	}
	return sb.String()
}

// signature computes the request's bucket key, or ok=false when the
// request cannot occupy one slot of a stacked batch at all (wrong input
// set, or a leading batch dim that isn't 1) — those fall through to the
// unbatched engine, which reports the precise validation error.
func (b *batcher) signature(inputs map[string]*mnn.Tensor) (string, bool) {
	if len(inputs) != len(b.inputNames) {
		return "", false
	}
	shapes := make(map[string][]int, len(b.inputNames))
	for _, name := range b.inputNames {
		t, ok := inputs[name]
		if !ok || t == nil {
			return "", false
		}
		s := t.Shape()
		if len(s) == 0 || s[0] != 1 {
			return "", false
		}
		if b.dynamic {
			// Out-of-plan shapes fall through to the unbatched engine,
			// which reports the typed ErrShapeOutOfPlan — never waste a
			// bucket (and a sticky probe failure) on them.
			max := b.dynMax[name]
			if len(s) != len(max) {
				return "", false
			}
			for i, d := range s {
				if d < 1 || d > max[i] {
					return "", false
				}
			}
		}
		shapes[name] = s
	}
	return signatureOf(b.inputNames, shapes), true
}

// infer submits one request to its shape bucket. The caller's context
// travels with the request: a caller that gives up while queued is dropped
// at stack time instead of burning an engine run.
func (b *batcher) infer(ctx context.Context, inputs map[string]*mnn.Tensor) (map[string]*mnn.Tensor, error) {
	sig, ok := b.signature(inputs)
	if !ok {
		return b.fallback.Infer(ctx, inputs)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	b.mu.Lock()
	_, bad := b.failed[sig]
	b.mu.Unlock()
	if bad {
		return b.fallback.Infer(ctx, inputs)
	}
	now := time.Now()
	deadline, _ := admission.EffectiveDeadline(ctx, now, b.slo)
	rq := &batchReq{
		ctx: ctx, inputs: inputs, sig: sig, arrival: now,
		deadline: deadline, resp: make(chan batchResp, 1),
	}
	select {
	case b.reqs <- rq:
	case <-b.quit:
		return b.fallback.Infer(ctx, inputs)
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: %v", mnn.ErrCancelled, ctx.Err())
	}
	select {
	case resp := <-rq.resp:
		if errors.Is(resp.err, errNoBucket) {
			return b.fallback.Infer(ctx, inputs)
		}
		return resp.outputs, resp.err
	case <-ctx.Done():
		// The batch still runs (or drops us at stack time); the buffered
		// channel absorbs the late response either way.
		return nil, fmt.Errorf("%w: %v", mnn.ErrCancelled, ctx.Err())
	}
}

// loop is the scheduler: it owns batch formation and never blocks on
// engine work. Ready batches queue in EDF order behind a nil-able send to
// the dispatch workers; a single timer tracks the earliest flush due time
// across buckets.
func (b *batcher) loop() {
	defer close(b.done)
	var (
		ready  []*batch
		next   *batch
		timer  *time.Timer
		timerC <-chan time.Time
	)
	stopTimer := func() {
		if timer != nil && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timerC = nil
	}
	for {
		if next == nil && len(ready) > 0 {
			next = popEarliest(&ready)
		}
		var sendC chan *batch
		if next != nil {
			sendC = b.dispatch
		}
		if due, ok := b.earliestDue(); ok {
			d := time.Until(due)
			if d < 0 {
				d = 0
			}
			stopTimer()
			if timer == nil {
				timer = time.NewTimer(d)
			} else {
				timer.Reset(d)
			}
			timerC = timer.C
		} else {
			stopTimer()
		}
		select {
		case rq := <-b.reqs:
			b.enqueue(rq, &ready)
		case sendC <- next:
			next = nil
		case <-timerC:
			timerC = nil
			b.cutDue(&ready, time.Now())
		case <-b.kick:
			// A bucket went idle; re-evaluate its (possibly overdue) queue.
			b.cutDue(&ready, time.Now())
		case <-b.quit:
			stopTimer()
			// Drain whatever raced in, then flush every queue so each
			// accepted request gets exactly one answer before the engines
			// close. The workers are still running, so blocking sends drain.
			for {
				select {
				case rq := <-b.reqs:
					b.enqueue(rq, &ready)
					continue
				default:
				}
				break
			}
			b.cutAll(&ready)
			if next != nil {
				b.dispatch <- next
			}
			for len(ready) > 0 {
				b.dispatch <- popEarliest(&ready)
			}
			close(b.dispatch)
			return
		}
	}
}

// enqueue routes one request into its bucket, creating (and LRU-evicting)
// as needed, and cuts the bucket when it fills.
func (b *batcher) enqueue(rq *batchReq, ready *[]*batch) {
	b.mu.Lock()
	bkt := b.buckets[rq.sig]
	if bkt == nil {
		if _, bad := b.failed[rq.sig]; bad || !b.makeRoomLocked() {
			b.mu.Unlock()
			rq.resp <- batchResp{err: errNoBucket}
			return
		}
		shapes := make(map[string][]int, len(b.inputNames))
		for _, name := range b.inputNames {
			shapes[name] = rq.inputs[name].Shape()
		}
		bkt = b.newBucket(rq.sig, shapes)
		b.buckets[rq.sig] = bkt
	}
	bkt.pending = append(bkt.pending, rq)
	bkt.lastUsed = time.Now()
	var bt *batch
	if len(bkt.pending) >= b.maxBatch {
		bt = b.cutLocked(bkt)
	}
	b.mu.Unlock()
	if bt != nil {
		*ready = append(*ready, bt)
	}
}

// makeRoomLocked ensures the bucket table has a free slot, evicting the
// least-recently-used idle non-primary bucket. Reports false when every
// bucket is busy or primary (the request then falls through).
func (b *batcher) makeRoomLocked() bool {
	if len(b.buckets) < b.maxBuckets {
		return true
	}
	var victim *bucket
	for _, bkt := range b.buckets {
		if bkt.primary || bkt.busy > 0 || len(bkt.pending) > 0 {
			continue
		}
		if victim == nil || bkt.lastUsed.Before(victim.lastUsed) {
			victim = bkt
		}
	}
	if victim == nil {
		return false
	}
	delete(b.buckets, victim.sig)
	b.evictions.Add(1)
	if b.hooks.onEvict != nil {
		b.hooks.onEvict()
	}
	if eng, bytes := victim.eng, victim.bytes; eng != nil {
		victim.eng = nil
		// Closing drains the engine's session pool; do it off the scheduler.
		b.closers.Add(1)
		go func() {
			defer b.closers.Done()
			eng.Close()
			if b.hooks.noteBytes != nil && bytes != 0 {
				b.hooks.noteBytes(-bytes)
			}
		}()
	}
	return len(b.buckets) < b.maxBuckets
}

// cutLocked turns the bucket's queue into one dispatchable batch.
func (b *batcher) cutLocked(bkt *bucket) *batch {
	reqs := bkt.pending
	bkt.pending = nil
	bkt.busy++
	bt := &batch{bkt: bkt, reqs: reqs}
	for i, rq := range reqs {
		if k := rq.edfKey(b.maxLatency); i == 0 || k.Before(bt.due) {
			bt.due = k
		}
	}
	return bt
}

// earliestDue scans buckets with queued requests for the soonest flush.
// Busy buckets are skipped: their engine serializes runs anyway (pool of
// 1), so a window-expired partial gains nothing from being cut early — it
// keeps filling until the in-flight run's completion kicks the scheduler.
func (b *batcher) earliestDue() (time.Time, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var min time.Time
	found := false
	for _, bkt := range b.buckets {
		if bkt.busy > 0 {
			continue
		}
		for _, rq := range bkt.pending {
			d := rq.due(b.maxLatency)
			if !found || d.Before(min) {
				min, found = d, true
			}
		}
	}
	return min, found
}

// cutDue flushes every idle bucket whose oldest queued request is due.
// Full batches never wait here — enqueue cuts them the moment they fill,
// busy or not, so a saturated bucket still double-buffers: one batch
// stacking while the previous computes.
func (b *batcher) cutDue(ready *[]*batch, now time.Time) {
	b.mu.Lock()
	for _, bkt := range b.buckets {
		if bkt.busy > 0 {
			continue
		}
		due := false
		for _, rq := range bkt.pending {
			if !rq.due(b.maxLatency).After(now) {
				due = true
				break
			}
		}
		if due {
			*ready = append(*ready, b.cutLocked(bkt))
		}
	}
	b.mu.Unlock()
}

// cutAll flushes every non-empty bucket (shutdown drain).
func (b *batcher) cutAll(ready *[]*batch) {
	b.mu.Lock()
	for _, bkt := range b.buckets {
		if len(bkt.pending) > 0 {
			*ready = append(*ready, b.cutLocked(bkt))
		}
	}
	b.mu.Unlock()
}

// popEarliest removes and returns the ready batch with the earliest
// deadline (EDF among ready buckets).
func popEarliest(ready *[]*batch) *batch {
	s := *ready
	best := 0
	for i := 1; i < len(s); i++ {
		if s[i].due.Before(s[best].due) {
			best = i
		}
	}
	bt := s[best]
	s[best] = s[len(s)-1]
	*ready = s[:len(s)-1]
	return bt
}

// worker consumes dispatched batches until the scheduler closes the
// channel. Two workers double-buffer the engine: one stacks batch k+1
// while the other's batch k computes (same-bucket runs serialize on the
// bucket engine's pool of 1).
func (b *batcher) worker() {
	defer b.workers.Done()
	for bt := range b.dispatch {
		b.runBatch(bt)
	}
}

// runBatch serves one batch: lazy engine open, stack, one batched run,
// split. Members whose caller already gave up are dropped before stacking;
// if none are left the engine isn't touched at all.
func (b *batcher) runBatch(bt *batch) {
	bkt := bt.bkt
	defer func() {
		b.mu.Lock()
		bkt.busy--
		bkt.lastUsed = time.Now()
		b.mu.Unlock()
		// Wake the scheduler: requests that queued behind this run may now
		// be overdue, and their bucket is eligible for a cut again.
		select {
		case b.kick <- struct{}{}:
		default:
		}
	}()
	if b.hooks.onFlush != nil {
		b.hooks.onFlush(len(bt.reqs))
	}
	if err := b.ensureEngine(bkt); err != nil {
		b.failBucket(bkt, err)
		// Serve the stranded members unbatched, each under its own context.
		for _, rq := range bt.reqs {
			out, ferr := b.fallback.Infer(rq.ctx, rq.inputs)
			rq.resp <- batchResp{outputs: out, err: ferr}
		}
		return
	}
	live := make([]*batchReq, 0, len(bt.reqs))
	for _, rq := range bt.reqs {
		if err := rq.ctx.Err(); err != nil {
			rq.resp <- batchResp{err: fmt.Errorf("%w: %v", mnn.ErrCancelled, err)}
			continue
		}
		live = append(live, rq)
	}
	if len(live) == 0 {
		return
	}
	// Partial primary-bucket batches skip pad-and-mask: the unbatched
	// engine is prepared at exactly this shape and bitwise-identical, so
	// serving n members at cost n beats padding to cost maxBatch — the
	// kernels are per-sample, padded slots are pure wasted compute. Lazy
	// static buckets have no unbatched twin, so they always pad. Dynamic
	// mode never pads at all (exact-n stacking costs n), so every batch —
	// partial or full, primary or not — takes the stacked path below.
	if !b.dynamic && bkt.primary && len(live) < b.maxBatch {
		var wg sync.WaitGroup
		for _, rq := range live {
			wg.Add(1)
			go func(rq *batchReq) {
				defer wg.Done()
				out, err := b.fallback.Infer(rq.ctx, rq.inputs)
				rq.resp <- batchResp{outputs: out, err: err}
			}(rq)
		}
		wg.Wait()
		b.mu.Lock()
		bkt.flushes++
		bkt.samples += uint64(len(live))
		b.mu.Unlock()
		return
	}
	stacked := b.stack(bkt, live)
	ctx, cancel := runContext(live)
	out, err := b.engineFor(bkt).Infer(ctx, stacked)
	cancel()
	b.batchRuns.Add(1)
	if err != nil {
		for _, rq := range live {
			rq.resp <- batchResp{err: err}
		}
		return
	}
	outs := splitOutputs(b.outputNames, bkt, out, len(live))
	for i, rq := range live {
		rq.resp <- batchResp{outputs: outs[i]}
	}
	b.mu.Lock()
	bkt.flushes++
	bkt.samples += uint64(len(live))
	b.mu.Unlock()
}

// failBucket retires a bucket whose engine cannot open: future requests
// with its signature fall through immediately instead of queueing.
func (b *batcher) failBucket(bkt *bucket, err error) {
	b.mu.Lock()
	if b.buckets[bkt.sig] == bkt {
		delete(b.buckets, bkt.sig)
	}
	if len(b.failed) < maxFailedSigs {
		b.failed[bkt.sig] = err
	}
	b.mu.Unlock()
}

// runContext bounds the batched run: detached from any single caller (one
// caller's cancellation must not fail its batch-mates) but carrying the
// earliest effective deadline among the members, so a run nobody can use
// anymore is cancelled instead of finishing for ghosts.
func runContext(reqs []*batchReq) (context.Context, context.CancelFunc) {
	var min time.Time
	for _, rq := range reqs {
		if rq.deadline.IsZero() {
			continue
		}
		if min.IsZero() || rq.deadline.Before(min) {
			min = rq.deadline
		}
	}
	if min.IsZero() {
		return context.Background(), func() {}
	}
	return context.WithDeadline(context.Background(), min)
}

// stack copies the live requests into slots 0..n-1 of the bucket's batch
// tensors. In static mode the batch tensor is always maxBatch wide and
// slots past n stay zero — the pad half of pad-and-mask; the mask half is
// splitOutputs reading only the live slots back out. In dynamic mode the
// batch tensor is exactly n wide: the shared engine re-derives shapes for
// the actual member count and no padded slot ever computes.
func (b *batcher) stack(bkt *bucket, reqs []*batchReq) map[string]*mnn.Tensor {
	stacked := make(map[string]*mnn.Tensor, len(b.inputNames))
	for _, name := range b.inputNames {
		shape := bkt.batchShape[name]
		if b.dynamic {
			shape = append([]int{len(reqs)}, shape[1:]...)
		}
		dst := tensor.New(shape...)
		per := bkt.perLen[name]
		for i, rq := range reqs {
			// A view over request i's slot; CopyFrom converts layout if the
			// caller handed us a non-NCHW tensor.
			slot := tensor.FromData(dst.Data()[i*per:(i+1)*per], bkt.perShape[name]...)
			slot.CopyFrom(rq.inputs[name])
		}
		stacked[name] = dst
	}
	return stacked
}

// splitOutputs cuts the batched outputs back into n per-request maps.
// Each output tensor is layout-converted exactly once per flush — the
// conversion allocates a full batch-sized tensor, so doing it per request
// was the allocation hot spot the regression test pins.
func splitOutputs(names []string, bkt *bucket, out map[string]*mnn.Tensor, n int) []map[string]*mnn.Tensor {
	res := make([]map[string]*mnn.Tensor, n)
	for i := range res {
		res[i] = make(map[string]*mnn.Tensor, len(names))
	}
	for _, name := range names {
		src := out[name].ToLayout(tensor.NCHW)
		data := src.Data()
		per := bkt.outLen[name]
		for i := 0; i < n; i++ {
			dst := tensor.New(bkt.outShape[name]...)
			copy(dst.Data(), data[i*per:(i+1)*per])
			res[i][name] = dst
		}
	}
	return res
}

// bucketStat is one bucket's scrape-time snapshot.
type bucketStat struct {
	sig       string
	depth     int           // requests queued now
	oldestAge time.Duration // age of the oldest queued request
	fill      float64       // cumulative: batched samples / (flushes × maxBatch)
	resident  bool          // engine open
}

// batcherStats snapshots the bucket table for /metrics.
type batcherStats struct {
	buckets   []bucketStat
	evictions int64
	runs      int64
}

func (b *batcher) stats() batcherStats {
	now := time.Now()
	b.mu.Lock()
	st := batcherStats{
		buckets:   make([]bucketStat, 0, len(b.buckets)),
		evictions: b.evictions.Load(),
		runs:      b.batchRuns.Load(),
	}
	for _, bkt := range b.buckets {
		bs := bucketStat{sig: bkt.sig, depth: len(bkt.pending)}
		if len(bkt.pending) > 0 {
			bs.oldestAge = now.Sub(bkt.pending[0].arrival)
		}
		if bkt.flushes > 0 {
			bs.fill = float64(bkt.samples) / (float64(bkt.flushes) * float64(b.maxBatch))
		}
		// The resident flag, not openMu: a dispatch worker can hold openMu
		// across an arbitrarily slow engine open, and blocking here while
		// holding b.mu would stall the scheduler's whole intake path for
		// the duration (the metrics-scrape-freezes-serving bug).
		bs.resident = bkt.resident.Load()
		st.buckets = append(st.buckets, bs)
	}
	b.mu.Unlock()
	sort.Slice(st.buckets, func(i, j int) bool { return st.buckets[i].sig < st.buckets[j].sig })
	return st
}

// close stops accepting requests, lets the scheduler drain every queue
// through the workers, then closes the bucket engines. The fallback engine
// belongs to the Model and is closed by it.
func (b *batcher) close() {
	close(b.quit)
	<-b.done // scheduler drained reqs, flushed queues, closed dispatch
	b.workers.Wait()
	b.closers.Wait()
	b.mu.Lock()
	bkts := make([]*bucket, 0, len(b.buckets))
	for _, bkt := range b.buckets {
		bkts = append(bkts, bkt)
	}
	b.buckets = make(map[string]*bucket)
	b.mu.Unlock()
	for _, bkt := range bkts {
		if bkt.eng == nil {
			continue
		}
		bkt.eng.Close()
		if !bkt.primary && b.hooks.noteBytes != nil && bkt.bytes != 0 {
			b.hooks.noteBytes(-bkt.bytes)
		}
	}
	if b.shared != nil {
		b.shared.Close()
	}
}
