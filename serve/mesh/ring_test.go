package mesh

import (
	"fmt"
	"testing"
)

// TestRingWalkDeterministic: the same key always walks the same replica
// order, and the order covers every replica exactly once.
func TestRingWalkDeterministic(t *testing.T) {
	r := newRing(5, 64)
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("model-%d:1", i)
		first := r.walk(key)
		if len(first) != 5 {
			t.Fatalf("walk(%q) covers %d replicas, want 5", key, len(first))
		}
		seen := make(map[int]bool)
		for _, idx := range first {
			if idx < 0 || idx >= 5 || seen[idx] {
				t.Fatalf("walk(%q) = %v: invalid or duplicate replica", key, first)
			}
			seen[idx] = true
		}
		for rep := 0; rep < 3; rep++ {
			again := r.walk(key)
			for j := range first {
				if again[j] != first[j] {
					t.Fatalf("walk(%q) not deterministic: %v then %v", key, first, again)
				}
			}
		}
	}
}

// TestRingSpreads: many keys land reasonably spread over the replicas (the
// point of vnodes), and different keys do not all share one home.
func TestRingSpreads(t *testing.T) {
	const replicas, keys = 3, 300
	r := newRing(replicas, 64)
	counts := make([]int, replicas)
	for i := 0; i < keys; i++ {
		counts[r.walk(fmt.Sprintf("m%d:1", i))[0]]++
	}
	for idx, n := range counts {
		// A uniform spread is 100 per replica; vnode placement noise is
		// fine, an empty or dominant replica is not.
		if n < keys/10 || n > keys/2+keys/10 {
			t.Errorf("replica %d homes %d/%d keys (spread %v)", idx, n, keys, counts)
		}
	}
}

// TestRingStability: growing the mesh from 3 to 4 replicas moves only the
// keys claimed by the new replica — consistent hashing's defining property.
// (Replica vnode hashes don't depend on the replica count, so the 3-ring's
// points are a subset of the 4-ring's.)
func TestRingStability(t *testing.T) {
	r3, r4 := newRing(3, 64), newRing(4, 64)
	const keys = 300
	var moved int
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("m%d:1", i)
		h3, h4 := r3.walk(key)[0], r4.walk(key)[0]
		if h4 == 3 {
			continue // claimed by the new replica; expected to move
		}
		if h3 != h4 {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved between replicas 0-2 when replica 3 joined", moved)
	}
}

func TestCanaryRulePick(t *testing.T) {
	rule := CanaryRule{{Version: "1", Weight: 75}, {Version: "2", Weight: 25}}
	if got := rule.pick(0.0); got != "1" {
		t.Errorf("pick(0.0) = %q, want 1", got)
	}
	if got := rule.pick(0.74); got != "1" {
		t.Errorf("pick(0.74) = %q, want 1", got)
	}
	if got := rule.pick(0.76); got != "2" {
		t.Errorf("pick(0.76) = %q, want 2", got)
	}
	if got := rule.pick(0.999999); got != "2" {
		t.Errorf("pick(~1) = %q, want 2", got)
	}
}

func TestParseCanarySpec(t *testing.T) {
	model, rule, err := ParseCanarySpec("resnet=1:90,2:10")
	if err != nil {
		t.Fatal(err)
	}
	if model != "resnet" || len(rule) != 2 || rule[0].Version != "1" || rule[0].Weight != 90 ||
		rule[1].Version != "2" || rule[1].Weight != 10 {
		t.Errorf("parsed %q / %+v", model, rule)
	}
	for _, bad := range []string{
		"", "resnet", "resnet=", "=1:90", "resnet=1", "resnet=1:x",
		"resnet=1:-5", "resnet=1:0,2:0", "res:net=1:90",
	} {
		if _, _, err := ParseCanarySpec(bad); err == nil {
			t.Errorf("ParseCanarySpec(%q): no error", bad)
		}
	}
}

func TestParseShadowSpec(t *testing.T) {
	model, version, err := ParseShadowSpec("resnet=2")
	if err != nil || model != "resnet" || version != "2" {
		t.Fatalf("got %q %q %v", model, version, err)
	}
	for _, bad := range []string{"", "resnet", "resnet=", "=2", "res:net=2"} {
		if _, _, err := ParseShadowSpec(bad); err == nil {
			t.Errorf("ParseShadowSpec(%q): no error", bad)
		}
	}
}
