package mesh

import (
	"fmt"
	"strconv"
	"strings"
)

// VersionWeight is one arm of a canary split.
type VersionWeight struct {
	Version string
	Weight  float64
}

// CanaryRule is a weighted split over versions of one model. It applies
// only to requests that do NOT pin a version ("m", not "m:2"): a client
// that asks for a specific version always gets it — the canary decides
// what "the default" means at the router, nothing more.
type CanaryRule []VersionWeight

// total returns the summed weight (validated > 0).
func (cr CanaryRule) total() float64 {
	var t float64
	for _, vw := range cr {
		t += vw.Weight
	}
	return t
}

// pick selects a version given a uniform sample in [0, 1).
func (cr CanaryRule) pick(u float64) string {
	x := u * cr.total()
	for _, vw := range cr {
		if x < vw.Weight {
			return vw.Version
		}
		x -= vw.Weight
	}
	return cr[len(cr)-1].Version
}

// ParseCanarySpec parses one -canary flag value:
//
//	model=version:weight[,version:weight...]
//
// e.g. "resnet=1:90,2:10" sends 90% of unpinned resnet traffic to version
// 1 and 10% to version 2. Weights are relative (they need not sum to 100).
func ParseCanarySpec(spec string) (model string, rule CanaryRule, err error) {
	model, arms, ok := strings.Cut(spec, "=")
	if !ok || model == "" || arms == "" {
		return "", nil, fmt.Errorf("mesh: canary spec %q: want model=version:weight,...", spec)
	}
	if strings.Contains(model, ":") {
		return "", nil, fmt.Errorf("mesh: canary spec %q: model must be a bare name (the rule spans versions)", spec)
	}
	for _, arm := range strings.Split(arms, ",") {
		version, ws, ok := strings.Cut(arm, ":")
		if !ok || version == "" {
			return "", nil, fmt.Errorf("mesh: canary spec %q: arm %q: want version:weight", spec, arm)
		}
		w, err := strconv.ParseFloat(ws, 64)
		if err != nil || w < 0 {
			return "", nil, fmt.Errorf("mesh: canary spec %q: arm %q: weight must be a non-negative number", spec, arm)
		}
		rule = append(rule, VersionWeight{Version: version, Weight: w})
	}
	if rule.total() <= 0 {
		return "", nil, fmt.Errorf("mesh: canary spec %q: weights sum to zero", spec)
	}
	return model, rule, nil
}

// ParseShadowSpec parses one -shadow flag value:
//
//	model=version
//
// Every infer request for model is duplicated to model:version on its own
// replica; the shadow response (and any shadow error) is discarded — it
// must never influence what the client receives.
func ParseShadowSpec(spec string) (model, version string, err error) {
	model, version, ok := strings.Cut(spec, "=")
	if !ok || model == "" || version == "" {
		return "", "", fmt.Errorf("mesh: shadow spec %q: want model=version", spec)
	}
	if strings.Contains(model, ":") {
		return "", "", fmt.Errorf("mesh: shadow spec %q: model must be a bare name", spec)
	}
	return model, version, nil
}
