package mesh

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mnn/internal/fault"
	"mnn/internal/leakcheck"
	"mnn/serve"
)

// TestBackoffDelaySchedule pins the retry schedule: full jitter over the
// capped exponential min(cap, base × 2^attempt).
func TestBackoffDelaySchedule(t *testing.T) {
	base, cap := 10*time.Millisecond, 80*time.Millisecond
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for attempt, w := range want {
		if d := backoffDelay(base, cap, attempt, 1.0); d != w*time.Millisecond {
			t.Fatalf("attempt %d: delay %v, want %v", attempt, d, w*time.Millisecond)
		}
		if d := backoffDelay(base, cap, attempt, 0.5); d != w*time.Millisecond/2 {
			t.Fatalf("attempt %d, jitter 0.5: delay %v, want %v", attempt, d, w*time.Millisecond/2)
		}
	}
	// Absurd attempt counts must not overflow into negative delays.
	if d := backoffDelay(base, cap, 500, 1.0); d != cap {
		t.Fatalf("attempt 500: delay %v, want cap %v", d, cap)
	}
	if d := backoffDelay(base, cap, 3, 0); d != 0 {
		t.Fatalf("zero jitter: delay %v, want 0", d)
	}
}

// TestBackoffSeedDeterminism: the same RetrySeed replays the same jittered
// delays (the property the chaos soak relies on for reproducible runs).
func TestBackoffSeedDeterminism(t *testing.T) {
	draw := func(seed uint64) []time.Duration {
		rt, err := New(Config{
			Replicas:       []string{"http://127.0.0.1:1"},
			RetrySeed:      seed,
			HealthInterval: time.Hour,
			HealthTimeout:  time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = rt.nextBackoff(i)
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestPickHonorsAvoidMarks: a per-model avoid mark steers the pick to the
// other replica while leaving the marked one eligible for other models —
// and when every replica is marked, the pick still lands (pass 2).
func TestPickHonorsAvoidMarks(t *testing.T) {
	rt, err := New(Config{
		Replicas:       []string{"http://10.0.0.1:1", "http://10.0.0.2:1"},
		HealthInterval: time.Hour,
		HealthTimeout:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for _, rep := range rt.replicas {
		rep.healthy.Store(true)
	}
	home := rt.pick("m:1", nil)
	if home == nil {
		t.Fatal("no pick with both replicas healthy")
	}
	home.markAvoid("m:1", time.Now().Add(time.Minute))
	if got := rt.pick("m:1", nil); got == home {
		t.Fatal("pick ignored the avoid mark")
	}
	if got := rt.pick("other:1", nil); got == nil {
		t.Fatal("avoid mark for m:1 leaked onto another model")
	}
	// Mark both: the request must still land somewhere.
	for _, rep := range rt.replicas {
		rep.markAvoid("m:1", time.Now().Add(time.Minute))
	}
	if got := rt.pick("m:1", nil); got == nil {
		t.Fatal("pick returned nil with every replica marked; pass 2 must ignore marks")
	}
	// Expired marks clear lazily.
	rep := rt.replicas[0]
	rep.markAvoid("x:1", time.Now().Add(-time.Second))
	if rep.avoided("x:1", time.Now()) {
		t.Fatal("expired avoid mark still honored")
	}
}

// TestMeshConnResetRetriedWithBackoff injects one connection reset through
// the chaos transport and asserts the router absorbs it: the client sees
// 200, the retry counter moves, and a jittered backoff sleep happened.
func TestMeshConnResetRetriedWithBackoff(t *testing.T) {
	leakcheck.Check(t)
	g := tinyVariant(t, 0)
	load := func(reg *serve.Registry) {
		if err := reg.Load("tiny", serve.ModelConfig{Model: g, Options: tinyOpts}); err != nil {
			t.Fatal(err)
		}
	}
	r1, r2 := bootReplica(t, load), bootReplica(t, load)
	plan, err := fault.ParsePlan(7, "mesh.transport=connreset,count=1,match=infer")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastHealth(r1.base, r2.base)
	cfg.Transport = fault.NewTransport(http.DefaultTransport, fault.NewInjector(plan))
	cfg.RetrySeed = 11
	base, rt := startRouter(t, cfg)

	var slept atomic.Int64
	realSleep := rt.sleep
	rt.sleep = func(ctx context.Context, d time.Duration) error {
		slept.Add(int64(d))
		return realSleep(ctx, d)
	}
	data, code, _, err := inferVia(base, "tiny", testInput(1))
	if err != nil || code != http.StatusOK || data == nil {
		t.Fatalf("infer through reset: code=%d err=%v", code, err)
	}
	if got := sumMetric(scrape(t, base), "mnn_mesh_retries_total"); got != 1 {
		t.Fatalf("retries metric = %g, want 1", got)
	}
	if slept.Load() <= 0 {
		t.Fatal("no backoff sleep between the failed attempt and the retry")
	}
}

// TestMeshTruncatedResponseTyped502: a response that dies mid-body is a
// typed 502 and is NOT retried — the replica may have executed the
// request, and non-idempotent give-up semantics must hold.
func TestMeshTruncatedResponseTyped502(t *testing.T) {
	leakcheck.Check(t)
	r1 := bootReplica(t, func(reg *serve.Registry) {
		if err := reg.Load("tiny", serve.ModelConfig{Model: tinyVariant(t, 0), Options: tinyOpts}); err != nil {
			t.Fatal(err)
		}
	})
	plan, err := fault.ParsePlan(9, "mesh.transport=truncate,count=1,match=infer")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastHealth(r1.base)
	cfg.Transport = fault.NewTransport(http.DefaultTransport, fault.NewInjector(plan))
	base, _ := startRouter(t, cfg)

	resp, err := http.Post(base+"/v2/models/tiny/infer", "application/json",
		strings.NewReader(`{"inputs":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("truncated response: status %d, want 502", resp.StatusCode)
	}
	text := scrape(t, base)
	if got := sumMetric(text, "mnn_mesh_truncated_responses_total"); got != 1 {
		t.Fatalf("truncated metric = %g, want 1", got)
	}
	if got := sumMetric(text, "mnn_mesh_retries_total"); got != 0 {
		t.Fatalf("truncation was retried (%g retries); must be final", got)
	}
	// Budget spent: traffic flows again.
	if _, code, _, err := inferVia(base, "tiny", testInput(1)); err != nil || code != http.StatusOK {
		t.Fatalf("infer after truncation: code=%d err=%v", code, err)
	}
}

// fakeReplica is a scripted backend for routing tests: /v2 health always
// passes; the infer path answers whatever respond returns.
func fakeReplica(t *testing.T, respond func(w http.ResponseWriter)) (string, *atomic.Int64) {
	t.Helper()
	var inferHits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v2/models/{name}/infer", func(w http.ResponseWriter, r *http.Request) {
		inferHits.Add(1)
		respond(w)
	})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	return hs.URL, &inferHits
}

func quarantinedRespond(w http.ResponseWriter) {
	w.Header().Set("X-Model-Quarantined", "true")
	w.Header().Set("Retry-After", "30")
	w.WriteHeader(http.StatusServiceUnavailable)
	w.Write([]byte(`{"error":"serve: model quarantined"}`))
}

func okRespond(w http.ResponseWriter) {
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(`{"outputs":[]}`))
}

// TestMeshRoutesAroundQuarantine: a quarantined 503 is re-picked on
// another replica (invisible to the client), the quarantined pair is
// avoided on later picks, and when EVERY replica quarantines the model
// the last 503 is relayed with its marker header intact.
func TestMeshRoutesAroundQuarantine(t *testing.T) {
	leakcheck.Check(t)
	qBase, qHits := fakeReplica(t, quarantinedRespond)
	okBase, _ := fakeReplica(t, okRespond)
	base, _ := startRouter(t, fastHealth(qBase, okBase))

	for i := 0; i < 8; i++ {
		resp, err := http.Post(base+"/v2/models/m/infer", "application/json",
			strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 via the healthy replica", i, resp.StatusCode)
		}
	}
	// The quarantined replica was consulted at most once: the avoid mark
	// (Retry-After 30) steers every later pick away.
	if n := qHits.Load(); n > 1 {
		t.Fatalf("quarantined replica was hit %d times; avoid mark not honored", n)
	}

	// All-quarantined: the client must see the 503 + marker, not a
	// generic no-replica error.
	q2Base, _ := fakeReplica(t, quarantinedRespond)
	q3Base, _ := fakeReplica(t, quarantinedRespond)
	base2, _ := startRouter(t, fastHealth(q2Base, q3Base))
	resp, err := http.Post(base2+"/v2/models/m/infer", "application/json",
		strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-quarantined: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("X-Model-Quarantined") != "true" {
		t.Fatal("all-quarantined 503 lost its X-Model-Quarantined header")
	}
}

// TestMesh429AvoidMark: a 429 still passes through verbatim (admission
// semantics, never retried), but its Retry-After marks the (replica,
// model) pair so later picks prefer replicas that didn't just shed.
func TestMesh429AvoidMark(t *testing.T) {
	leakcheck.Check(t)
	shedBase, shedHits := fakeReplica(t, func(w http.ResponseWriter) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"overloaded"}`))
	})
	okBase, _ := fakeReplica(t, okRespond)
	base, _ := startRouter(t, fastHealth(shedBase, okBase))

	saw429 := 0
	for i := 0; i < 10; i++ {
		resp, err := http.Post(base+"/v2/models/m/infer", "application/json",
			strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			saw429++
		case http.StatusOK:
		default:
			t.Fatalf("request %d: unexpected status %d", i, resp.StatusCode)
		}
	}
	// Pass-through preserved (the first pick may land on the shedding
	// replica) but the avoid mark caps it at one.
	if saw429 > 1 || shedHits.Load() > 1 {
		t.Fatalf("shedding replica consulted %d times, %d client 429s; avoid mark not honored",
			shedHits.Load(), saw429)
	}
}

// TestMeshRouterCloseNoLeaksUnderChaos: router shutdown releases every
// goroutine even with a fault-injecting transport mid-schedule.
func TestMeshRouterCloseNoLeaksUnderChaos(t *testing.T) {
	leakcheck.Check(t)
	g := tinyVariant(t, 0)
	r1 := bootReplica(t, func(reg *serve.Registry) {
		if err := reg.Load("tiny", serve.ModelConfig{Model: g, Options: tinyOpts}); err != nil {
			t.Fatal(err)
		}
	})
	plan, err := fault.ParsePlan(5, "mesh.transport=connreset,p=0.4,match=infer;mesh.transport=latency:5ms,p=0.3")
	if err != nil {
		t.Fatal(err)
	}
	ft := fault.NewTransport(&http.Transport{}, fault.NewInjector(plan))
	cfg := fastHealth(r1.base)
	cfg.Transport = ft
	base, rt := startRouter(t, cfg)
	for i := 0; i < 10; i++ {
		_, _, _, _ = inferVia(base, "tiny", testInput(uint64(i)))
	}
	rt.Close()
	ft.CloseIdleConnections()
}

// TestCanarySeedDeterminism is the regression for canary picks drawing
// from the unseeded global rand while backoff jitter used the seeded
// stream: with a fixed RetrySeed, the sequence of canary decisions must
// replay exactly, and a different seed must produce a different sequence.
func TestCanarySeedDeterminism(t *testing.T) {
	rule := CanaryRule{{Version: "1", Weight: 50}, {Version: "2", Weight: 50}}
	draw := func(seed uint64) []string {
		rt, err := New(Config{
			Replicas:       []string{"http://127.0.0.1:1"},
			RetrySeed:      seed,
			HealthInterval: time.Hour,
			HealthTimeout:  time.Millisecond,
			Canary:         map[string]CanaryRule{"tiny": rule},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		out := make([]string, 64)
		for i := range out {
			out[i] = rule.pick(rt.randFloat())
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at pick %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := draw(1042)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-pick canary sequences")
	}
}
