package mesh

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mnn"
	"mnn/internal/tensor"
	"mnn/serve"
)

// tinyVariantJSON builds the serve test suite's tiny network (conv →
// depthwise → pointwise → global pool → softmax) with a weight-seed offset:
// different offsets give different weights, hence observably different
// outputs — which is how the shadow test proves whose response the client
// actually received.
func tinyVariantJSON(seedOffset int) string {
	return fmt.Sprintf(`{
  "name": "tiny",
  "inputs": ["data"],
  "outputs": ["prob"],
  "nodes": [
    {"name": "data", "op": "Input", "attrs": {"shape": [1, 3, 16, 16]}},
    {"name": "conv1", "op": "Conv2D", "inputs": ["data"], "weights": ["w1", "b1"],
     "attrs": {"kernel": [3], "pad": [1], "outputs": 8, "relu": true}},
    {"name": "gap", "op": "Pool", "inputs": ["conv1"], "attrs": {"type": "avg", "global": true}},
    {"name": "flat", "op": "Flatten", "inputs": ["gap"], "attrs": {"axis": 1}},
    {"name": "prob", "op": "Softmax", "inputs": ["flat"], "attrs": {"axis": 1}}
  ],
  "weights": [
    {"name": "w1", "shape": [8, 3, 3, 3], "init": "random", "seed": %d, "scale": 0.3},
    {"name": "b1", "shape": [8], "init": "random", "seed": %d, "scale": 0.1}
  ]
}`, seedOffset+1, seedOffset+2)
}

func tinyVariant(t *testing.T, seedOffset int) *mnn.Graph {
	t.Helper()
	g, err := mnn.ParseJSONModel(strings.NewReader(tinyVariantJSON(seedOffset)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

var tinyOpts = []mnn.Option{mnn.WithPoolSize(2), mnn.WithThreads(1)}

// replicaHandle is one in-process mnnserve replica the router fronts. kill
// simulates a crash: listeners and established connections close
// immediately, nothing drains.
type replicaHandle struct {
	base string
	reg  *serve.Registry
	hs   *http.Server
}

func (rh *replicaHandle) kill() { rh.hs.Close() }

func bootReplica(t *testing.T, load func(reg *serve.Registry)) *replicaHandle {
	t.Helper()
	reg := serve.NewRegistry()
	load(reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: serve.NewServer(reg).Handler()}
	go hs.Serve(l)
	rh := &replicaHandle{base: "http://" + l.Addr().String(), reg: reg, hs: hs}
	t.Cleanup(func() { rh.kill(); reg.Close() })
	return rh
}

func startRouter(t *testing.T, cfg Config) (string, *Router) {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: rt.Handler()}
	go hs.Serve(l)
	t.Cleanup(func() { hs.Close(); rt.Close() })
	return "http://" + l.Addr().String(), rt
}

// fastHealth is the test health/breaker configuration: tight enough that
// ejection and recovery happen within a test, not so tight that a loaded CI
// machine flaps.
func fastHealth(replicas ...string) Config {
	return Config{
		Replicas:         replicas,
		HealthInterval:   25 * time.Millisecond,
		HealthTimeout:    2 * time.Second,
		UnhealthyAfter:   2,
		BreakerThreshold: 2,
		BreakerCooldown:  300 * time.Millisecond,
	}
}

func testInput(seed uint64) *mnn.Tensor {
	in := tensor.New(1, 3, 16, 16)
	tensor.FillRandom(in, seed, 1)
	return in
}

// inferVia posts one inference through base and returns the first output
// tensor's data (nil unless 200), the status code and the serving replica.
func inferVia(base, ref string, in *mnn.Tensor) (data []float32, code int, replica string, err error) {
	body, err := json.Marshal(serve.InferRequest{Inputs: []serve.InferTensor{serve.EncodeTensor("data", in)}})
	if err != nil {
		return nil, 0, "", err
	}
	resp, err := http.Post(base+"/v2/models/"+ref+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, "", err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode, resp.Header.Get("X-Mesh-Replica"), nil
	}
	var ir serve.InferResponse
	if err := json.Unmarshal(blob, &ir); err != nil {
		return nil, resp.StatusCode, "", err
	}
	if len(ir.Outputs) == 0 {
		return nil, resp.StatusCode, "", fmt.Errorf("no outputs in %s", blob)
	}
	return ir.Outputs[0].Data, resp.StatusCode, resp.Header.Get("X-Mesh-Replica"), nil
}

// scrape fetches a /metrics page.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// sumMetric sums the values of every series whose "name{labels}" part
// contains all the given substrings.
func sumMetric(text string, substrings ...string) float64 {
	var total float64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndex(line, " ")
		if i < 0 {
			continue
		}
		series, val := line[:i], line[i+1:]
		ok := true
		for _, sub := range substrings {
			if !strings.Contains(series, sub) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		var f float64
		if _, err := fmt.Sscanf(val, "%g", &f); err == nil {
			total += f
		}
	}
	return total
}

// TestRouterFailover is the mesh e2e: 3 replicas all serving the same
// model set, a flood through the router, one replica crash-killed between
// flood phases. Requirements: zero failed client requests (connection-level
// failures retry on other replicas), the health checker ejects the dead
// replica, and the survivors absorb its traffic.
func TestRouterFailover(t *testing.T) {
	models := []string{"m0", "m1", "m2", "m3", "m4", "m5"}
	loadAll := func(reg *serve.Registry) {
		g := tinyVariant(t, 0)
		for _, name := range models {
			if err := reg.Load(name, serve.ModelConfig{Model: g, Options: tinyOpts}); err != nil {
				t.Fatal(err)
			}
		}
	}
	reps := []*replicaHandle{bootReplica(t, loadAll), bootReplica(t, loadAll), bootReplica(t, loadAll)}
	base, _ := startRouter(t, fastHealth(reps[0].base, reps[1].base, reps[2].base))

	in := testInput(7)
	var failures atomic.Int64
	flood := func(n int) {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < n/4; i++ {
					ref := models[(w+i)%len(models)]
					_, code, _, err := inferVia(base, ref, in)
					if err != nil || code != http.StatusOK {
						failures.Add(1)
						t.Errorf("infer %s: code %d err %v", ref, code, err)
					}
				}
			}(w)
		}
		wg.Wait()
	}

	flood(160)

	// Find a replica that actually served traffic and crash it.
	victim := -1
	for i, rep := range reps {
		if sumMetric(scrape(t, base), "mnn_mesh_requests_total", rep.base, `code="200"`) > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no replica served any traffic")
	}
	reps[victim].kill()

	flood(160)

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d failed requests across the kill", n)
	}

	// The health checker must have ejected the victim by now (interval 25ms,
	// 2 misses); poll briefly to avoid scraping mid-round.
	deadline := time.Now().Add(3 * time.Second)
	for {
		text := scrape(t, base)
		if sumMetric(text, "mnn_mesh_replica_healthy", reps[victim].base) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim %s still marked healthy:\n%s", reps[victim].base, text)
		}
		time.Sleep(20 * time.Millisecond)
	}

	text := scrape(t, base)
	if got := sumMetric(text, "mnn_mesh_retries_total", reps[victim].base); got == 0 {
		t.Error("no retries recorded against the killed replica — the retry path never ran")
	}
	var survivors float64
	for i, rep := range reps {
		if i != victim {
			survivors += sumMetric(text, "mnn_mesh_requests_total", rep.base, `code="200"`)
		}
	}
	if survivors < 160 {
		t.Errorf("survivors served %.0f requests, want at least the post-kill phase (160)", survivors)
	}
	// And the mesh still reports ready with one replica down.
	resp, err := http.Get(base + "/v2/health/ready")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("ready after kill: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
}

// TestRouterCanary: unpinned requests split between versions by weight
// (within statistical tolerance); pinned requests bypass the canary
// entirely.
func TestRouterCanary(t *testing.T) {
	load := func(reg *serve.Registry) {
		if err := reg.Load("c:1", serve.ModelConfig{Model: tinyVariant(t, 0), Options: tinyOpts}); err != nil {
			t.Fatal(err)
		}
		if err := reg.Load("c:2", serve.ModelConfig{Model: tinyVariant(t, 100), Options: tinyOpts}); err != nil {
			t.Fatal(err)
		}
	}
	reps := []*replicaHandle{bootReplica(t, load), bootReplica(t, load)}
	cfg := fastHealth(reps[0].base, reps[1].base)
	cfg.Canary = map[string]CanaryRule{"c": {{Version: "1", Weight: 75}, {Version: "2", Weight: 25}}}
	base, _ := startRouter(t, cfg)

	in := testInput(11)
	// Pinned phase: version 2 explicitly; the canary must not touch these.
	for i := 0; i < 40; i++ {
		if _, code, _, err := inferVia(base, "c:2", in); err != nil || code != http.StatusOK {
			t.Fatalf("pinned infer: code %d err %v", code, err)
		}
	}
	text := scrape(t, base)
	if got := sumMetric(text, "mnn_mesh_canary_total"); got != 0 {
		t.Fatalf("canary counted %v pinned requests, want 0", got)
	}

	// Unpinned phase: 400 bare-name requests, expect a ~75/25 split.
	const unpinned = 400
	for i := 0; i < unpinned; i++ {
		if _, code, _, err := inferVia(base, "c", in); err != nil || code != http.StatusOK {
			t.Fatalf("unpinned infer %d: code %d err %v", i, code, err)
		}
	}
	text = scrape(t, base)
	v1 := sumMetric(text, "mnn_mesh_canary_total", `version="1"`)
	v2 := sumMetric(text, "mnn_mesh_canary_total", `version="2"`)
	if v1+v2 != unpinned {
		t.Fatalf("canary counted %v+%v, want %d", v1, v2, unpinned)
	}
	// Mean 300, binomial σ≈8.7; ±60 is ~7σ — a real weight bug (e.g. 50/50
	// → mean 200) is >10σ away, noise is not.
	if v1 < 240 || v1 > 360 {
		t.Errorf("version 1 got %v/400 unpinned requests, want 300±60", v1)
	}

	// The replicas must have served the versions the canary chose: their
	// own per-ref request counters add up ref-by-ref.
	var served1, served2 float64
	for _, rep := range reps {
		rtext := scrape(t, rep.base)
		served1 += sumMetric(rtext, "mnn_requests_total", `model="c:1"`, `code="200"`)
		served2 += sumMetric(rtext, "mnn_requests_total", `model="c:2"`, `code="200"`)
	}
	if served1 != v1 || served2 != v2+40 {
		t.Errorf("replicas served c:1=%v c:2=%v, want %v and %v (canary + 40 pinned)",
			served1, served2, v1, v2+40)
	}
}

// TestRouterShadow: shadow traffic reaches the shadow version, but the
// client always receives the primary version's response — even when the
// shadow version is broken (missing), nothing surfaces.
func TestRouterShadow(t *testing.T) {
	load := func(reg *serve.Registry) {
		// d:1 and d:2 have different weights, so their outputs differ —
		// receiving d:2's output would be detectable.
		if err := reg.Load("d:1", serve.ModelConfig{Model: tinyVariant(t, 0), Options: tinyOpts}); err != nil {
			t.Fatal(err)
		}
		if err := reg.Load("d:2", serve.ModelConfig{Model: tinyVariant(t, 200), Options: tinyOpts}); err != nil {
			t.Fatal(err)
		}
		// Stable version stays the default; version 2 is the shadow
		// candidate. Without the pin, bare "d" would resolve to the highest
		// version (2) on the replica and the isolation check would be moot.
		if err := reg.SetDefault("d", "1"); err != nil {
			t.Fatal(err)
		}
		// e has no version 9: its shadow duplicates all 404.
		if err := reg.Load("e:1", serve.ModelConfig{Model: tinyVariant(t, 0), Options: tinyOpts}); err != nil {
			t.Fatal(err)
		}
	}
	reps := []*replicaHandle{bootReplica(t, load), bootReplica(t, load)}
	cfg := fastHealth(reps[0].base, reps[1].base)
	cfg.Shadow = map[string]string{"d": "2", "e": "9"}
	base, _ := startRouter(t, cfg)

	in := testInput(23)
	// Ground truth straight from a replica, bypassing the router.
	want1, code, _, err := inferVia(reps[0].base, "d:1", in)
	if err != nil || code != http.StatusOK {
		t.Fatalf("direct d:1: code %d err %v", code, err)
	}
	want2, code, _, err := inferVia(reps[0].base, "d:2", in)
	if err != nil || code != http.StatusOK {
		t.Fatalf("direct d:2: code %d err %v", code, err)
	}
	if floatsEqual(want1, want2) {
		t.Fatal("d:1 and d:2 produce identical outputs; the shadow check would be vacuous")
	}

	for i := 0; i < 30; i++ {
		got, code, _, err := inferVia(base, "d", in)
		if err != nil || code != http.StatusOK {
			t.Fatalf("shadowed infer %d: code %d err %v", i, code, err)
		}
		if !floatsEqual(got, want1) {
			t.Fatalf("shadowed infer %d returned something other than d:1's output (d:2 leaked? got %v)", i, got)
		}
	}
	// Shadow traffic to a missing version: clients still never see an error.
	for i := 0; i < 20; i++ {
		if _, code, _, err := inferVia(base, "e", in); err != nil || code != http.StatusOK {
			t.Fatalf("broken-shadow infer %d: code %d err %v", i, code, err)
		}
	}

	// The duplicates are async; wait for their outcomes to land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		text := scrape(t, base)
		okCount := sumMetric(text, "mnn_mesh_shadow_total", `model="d"`, `outcome="ok"`)
		errCount := sumMetric(text, "mnn_mesh_shadow_total", `model="e"`, `outcome="error"`)
		if okCount > 0 && errCount > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shadow outcomes never landed (d ok=%v, e error=%v)", okCount, errCount)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func floatsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-6 {
			return false
		}
	}
	return true
}

// TestRouter429PassThrough: admission rejections are replica state, not
// connection failures — they pass through verbatim (Retry-After included)
// and are never retried on another replica.
func TestRouter429PassThrough(t *testing.T) {
	load := func(reg *serve.Registry) {
		err := reg.Load("q", serve.ModelConfig{
			Model:     tinyVariant(t, 0),
			Options:   []mnn.Option{mnn.WithPoolSize(1), mnn.WithThreads(1)},
			Admission: serve.AdmissionConfig{Queue: 1, Concurrency: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	reps := []*replicaHandle{bootReplica(t, load), bootReplica(t, load)}
	base, _ := startRouter(t, fastHealth(reps[0].base, reps[1].base))

	body, _ := json.Marshal(serve.InferRequest{Inputs: []serve.InferTensor{serve.EncodeTensor("data", testInput(3))}})
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		shed       int
		badStatus  []int
		retryAfter = true
	)
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				resp, err := http.Post(base+"/v2/models/q/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusTooManyRequests:
					shed++
					if resp.Header.Get("Retry-After") == "" {
						retryAfter = false
					}
				default:
					badStatus = append(badStatus, resp.StatusCode)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(badStatus) > 0 {
		t.Fatalf("unexpected statuses %v (want only 200 and 429)", badStatus)
	}
	if shed == 0 {
		t.Skip("flood produced no 429s on this machine; pass-through not exercised")
	}
	if !retryAfter {
		t.Error("429 responses lost their Retry-After header through the router")
	}
	if got := sumMetric(scrape(t, base), "mnn_mesh_retries_total"); got != 0 {
		t.Errorf("router retried %v times during an overload flood — 429s must never be retried", got)
	}
}

// TestRouterRepositoryFanout: loading a model through the router installs
// it on every replica (its traffic may hash anywhere), listing merges
// replica catalogues, and unload removes it mesh-wide.
func TestRouterRepositoryFanout(t *testing.T) {
	load := func(reg *serve.Registry) {
		if err := reg.Load("pre", serve.ModelConfig{Model: tinyVariant(t, 0), Options: tinyOpts}); err != nil {
			t.Fatal(err)
		}
	}
	reps := []*replicaHandle{bootReplica(t, load), bootReplica(t, load)}
	base, _ := startRouter(t, fastHealth(reps[0].base, reps[1].base))

	path := t.TempDir() + "/tiny.mnng"
	if err := mnn.SaveModelFile(tinyVariant(t, 0), path); err != nil {
		t.Fatal(err)
	}
	blob, _ := json.Marshal(serve.LoadRequest{Model: path, Options: serve.LoadOptions{PoolSize: 1, Threads: 1}})
	resp, err := http.Post(base+"/v2/repository/models/hot/load", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fanout load: %d", resp.StatusCode)
	}
	for _, rep := range reps {
		if _, err := rep.reg.Get("hot"); err != nil {
			t.Errorf("replica %s did not get the fanned-out load: %v", rep.base, err)
		}
	}

	lresp, err := http.Get(base + "/v2/models")
	if err != nil {
		t.Fatal(err)
	}
	var list serve.ModelList
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	want := []string{"hot", "pre"}
	if fmt.Sprint(list.Models) != fmt.Sprint(want) {
		t.Errorf("merged model list %v, want %v", list.Models, want)
	}
	if fmt.Sprint(list.Refs) != fmt.Sprint([]string{"hot:1", "pre:1"}) {
		t.Errorf("merged refs %v", list.Refs)
	}

	if _, code, _, err := inferVia(base, "hot", testInput(5)); err != nil || code != http.StatusOK {
		t.Fatalf("infer on fanned-out model: code %d err %v", code, err)
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/v2/repository/models/hot", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("fanout unload: %d", dresp.StatusCode)
	}
	for _, rep := range reps {
		if _, err := rep.reg.Get("hot"); err == nil {
			t.Errorf("replica %s still has the model after fanout unload", rep.base)
		}
	}
}

// TestRouterNoReplica: with every replica dead the router answers 503 (and
// counts it) instead of hanging.
func TestRouterNoReplica(t *testing.T) {
	rep := bootReplica(t, func(reg *serve.Registry) {
		if err := reg.Load("m", serve.ModelConfig{Model: tinyVariant(t, 0), Options: tinyOpts}); err != nil {
			t.Fatal(err)
		}
	})
	base, _ := startRouter(t, fastHealth(rep.base))
	rep.kill()

	_, code, _, err := inferVia(base, "m", testInput(9))
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusServiceUnavailable {
		t.Fatalf("infer with dead mesh: %d, want 503", code)
	}
	// Readiness follows once the checker notices.
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err := http.Get(base + "/v2/health/ready")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("mesh still ready with its only replica dead")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := sumMetric(scrape(t, base), "mnn_mesh_no_replica_total"); got == 0 {
		t.Error("no-replica counter never incremented")
	}
}
