package mesh

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over replica indices with virtual nodes.
// Keys are model references ("name:version"), so each model sticks to one
// replica — which is what makes memory-budgeted replicas effective: every
// replica keeps a disjoint working set resident instead of all replicas
// thrashing the whole model catalogue.
//
// The ring itself is immutable after build; replica failure is handled at
// selection time (walk order skips ineligible replicas), not by rebuilding,
// so a flapping replica cannot churn every model's placement.
type ring struct {
	points   []ringPoint // sorted by hash
	replicas int
}

type ringPoint struct {
	hash    uint64
	replica int
}

// newRing builds a ring of replicas × vnodes points.
func newRing(replicas, vnodes int) *ring {
	r := &ring{replicas: replicas}
	r.points = make([]ringPoint, 0, replicas*vnodes)
	for i := 0; i < replicas; i++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(fmt.Sprintf("replica-%d/vnode-%d", i, v)),
				replica: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// walk returns every replica index in ring order starting at the key's
// position, deduplicated — the preference order for placing the key. The
// first entry is the key's home; later entries are where it spills when the
// home is over its bounded-load limit, circuit-open, or unhealthy.
func (r *ring) walk(key string) []int {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	order := make([]int, 0, r.replicas)
	seen := make([]bool, r.replicas)
	for i := 0; i < len(r.points) && len(order) < r.replicas; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			order = append(order, p.replica)
		}
	}
	return order
}
