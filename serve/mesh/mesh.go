// Package mesh is the distributed front door of the serving tier: a router
// that spreads /v2 inference traffic across N mnnserve replicas.
//
// Placement uses consistent hashing on the model reference
// ("name:version") with a bounded-load variant: each model has a home
// replica, and requests spill to the next replica on the ring only when the
// home is above its fair share of in-flight load (factor × mean). Sticky
// placement is what makes memory-budgeted replicas effective — each replica
// keeps a disjoint subset of the catalogue resident instead of every
// replica thrashing all models — while the load bound keeps one hot model
// from melting a single replica.
//
// Replica failure is handled three ways, fastest first:
//
//   - retry: a connection-level failure (dial refused, reset before any
//     response) is transparently retried on the next replica in ring order,
//     with capped exponential backoff and full jitter between attempts.
//     An HTTP response is NEVER retried — in particular a 429 carries
//     admission-control semantics (the model's queue is full; another
//     replica would not have its engines warm) and passes through verbatim,
//     Retry-After included (the router additionally honors it as a
//     per-(replica, model) avoid mark for later picks). The one exception
//     is a 503 carrying X-Model-Quarantined: the replica refused at the
//     gate before executing anything, so retrying the request on another
//     replica is safe even for non-idempotent inference — that is how the
//     mesh routes around a crash-quarantined model. A response that dies
//     mid-body is returned as a typed 502 and never retried: the replica
//     may have executed the request.
//   - circuit breaking: after BreakerThreshold consecutive connection
//     failures a replica is skipped for BreakerCooldown, then a single
//     request probes it (half-open).
//   - active health checks: GET /v2 on every replica each HealthInterval;
//     UnhealthyAfter consecutive failures eject the replica from selection,
//     one success reinstates it.
//
// Two version-aware traffic policies run at the router:
//
//   - canary: requests that do not pin a version are split between versions
//     by weight ("resnet=1:90,2:10"). Pinned requests bypass the canary.
//   - shadow: requests for a model are duplicated to a shadow version on
//     its own replica; the shadow response is always discarded, and shadow
//     failures never surface to clients.
package mesh

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mnn/internal/metrics"
	"mnn/serve"
)

// Defaults for Config's zero values.
const (
	DefaultHealthInterval   = 2 * time.Second
	DefaultHealthTimeout    = time.Second
	DefaultUnhealthyAfter   = 2
	DefaultLoadFactor       = 1.25
	DefaultVNodes           = 64
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 5 * time.Second
	DefaultShadowInflight   = 64
	DefaultShadowTimeout    = 30 * time.Second

	// DefaultRetryBackoffBase/Cap shape the delay between connection-level
	// retry attempts: full jitter over min(cap, base << attempt).
	DefaultRetryBackoffBase = 5 * time.Millisecond
	DefaultRetryBackoffCap  = 250 * time.Millisecond
	// DefaultAvoidTTL is how long a quarantined 503 (or a 429 without a
	// Retry-After) keeps its (replica, model) avoid mark.
	DefaultAvoidTTL = time.Second
)

// Config parameterizes a Router.
type Config struct {
	// Replicas are the mnnserve base URLs ("http://host:port"), required.
	Replicas []string

	// HealthInterval is the active health-check period (default 2s).
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (default 1s).
	HealthTimeout time.Duration
	// UnhealthyAfter ejects a replica after that many consecutive failed
	// checks (default 2); one passing check reinstates it.
	UnhealthyAfter int

	// LoadFactor is the bounded-load limit: a replica accepts a request for
	// its model only while its in-flight count is below
	// ceil(factor × (total in-flight + 1) / eligible replicas); above it the
	// request spills along the ring (default 1.25).
	LoadFactor float64
	// VNodes is the virtual nodes per replica on the hash ring (default 64).
	VNodes int

	// BreakerThreshold opens a replica's circuit after that many
	// consecutive connection-level failures (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit skips the replica before
	// a half-open probe (default 5s).
	BreakerCooldown time.Duration

	// RetryBackoffBase is the first-retry delay of the capped exponential
	// backoff between connection-failure attempts (default 5ms). The n-th
	// retry sleeps jitter × min(RetryBackoffCap, base × 2ⁿ) with full
	// jitter, so synchronized clients spread out instead of stampeding a
	// recovering replica.
	RetryBackoffBase time.Duration
	// RetryBackoffCap bounds one backoff delay (default 250ms).
	RetryBackoffCap time.Duration
	// RetrySeed seeds the backoff jitter stream; 0 derives a seed from the
	// clock. Fixing it makes retry schedules reproducible in tests and
	// chaos runs.
	RetrySeed uint64

	// Canary maps a model name to its weighted version split for unpinned
	// requests.
	Canary map[string]CanaryRule
	// Shadow maps a model name to the version that receives a discarded
	// duplicate of its traffic.
	Shadow map[string]string
	// ShadowInflight caps concurrent shadow duplicates (default 64);
	// excess duplicates are dropped, never queued against client latency.
	ShadowInflight int

	// Transport overrides the proxy transport (default: keep-alive pooled).
	Transport http.RoundTripper
}

func (c *Config) applyDefaults() {
	if c.HealthInterval <= 0 {
		c.HealthInterval = DefaultHealthInterval
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = DefaultHealthTimeout
	}
	if c.UnhealthyAfter <= 0 {
		c.UnhealthyAfter = DefaultUnhealthyAfter
	}
	if c.LoadFactor <= 1 {
		c.LoadFactor = DefaultLoadFactor
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.RetryBackoffBase <= 0 {
		c.RetryBackoffBase = DefaultRetryBackoffBase
	}
	if c.RetryBackoffCap <= 0 {
		c.RetryBackoffCap = DefaultRetryBackoffCap
	}
	if c.ShadowInflight <= 0 {
		c.ShadowInflight = DefaultShadowInflight
	}
	if c.Transport == nil {
		c.Transport = &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 128,
			IdleConnTimeout:     90 * time.Second,
		}
	}
}

// Router proxies the /v2 protocol across replicas. Create with New, mount
// Handler, stop with Close.
type Router struct {
	cfg      Config
	replicas []*replica
	ring     *ring
	client   *http.Client
	metrics  *routerMetrics
	hc       *healthChecker
	shadowSl chan struct{}

	// jitter and sleep are the backoff's injectable randomness and clock
	// (overridden in tests for deterministic retry schedules).
	jitterMu sync.Mutex
	jitter   func() float64
	sleep    func(ctx context.Context, d time.Duration) error

	closeOnce sync.Once
}

// backoffDelay is the pure schedule: full jitter over the capped
// exponential min(cap, base × 2^attempt). attempt counts completed
// failures (0 = delay before the first retry).
func backoffDelay(base, cap time.Duration, attempt int, jitter float64) time.Duration {
	d := cap
	if attempt < 62 {
		if e := base << uint(attempt); e > 0 && e < cap {
			d = e
		}
	}
	return time.Duration(jitter * float64(d))
}

// nextBackoff draws one jittered delay (the jitter stream is shared across
// requests, so it is locked).
func (rt *Router) nextBackoff(attempt int) time.Duration {
	return backoffDelay(rt.cfg.RetryBackoffBase, rt.cfg.RetryBackoffCap, attempt, rt.randFloat())
}

// randFloat draws one uniform sample from the router's seeded stream. All
// of the router's randomness — retry jitter and canary version picks —
// comes from this one PCG stream, so a fixed RetrySeed replays the whole
// routing behaviour deterministically (what -chaos soaks and the mesh
// tests rely on).
func (rt *Router) randFloat() float64 {
	rt.jitterMu.Lock()
	defer rt.jitterMu.Unlock()
	return rt.jitter()
}

// New validates the configuration, runs one synchronous health round (so a
// router that starts against live replicas routes immediately), and starts
// the periodic checker.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("mesh: no replicas configured")
	}
	cfg.applyDefaults()
	rt := &Router{
		cfg:      cfg,
		ring:     newRing(len(cfg.Replicas), cfg.VNodes),
		client:   &http.Client{Transport: cfg.Transport},
		metrics:  newRouterMetrics(),
		shadowSl: make(chan struct{}, cfg.ShadowInflight),
	}
	seed := cfg.RetrySeed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	jr := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	rt.jitter = jr.Float64
	rt.sleep = func(ctx context.Context, d time.Duration) error {
		if d <= 0 {
			return ctx.Err()
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
	seen := make(map[string]bool)
	for _, raw := range cfg.Replicas {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("mesh: replica %q is not a base URL like http://host:port", raw)
		}
		base := strings.TrimRight(u.String(), "/")
		if seen[base] {
			return nil, fmt.Errorf("mesh: duplicate replica %q", base)
		}
		seen[base] = true
		rt.replicas = append(rt.replicas, &replica{baseURL: base})
		rt.metrics.initReplica(base)
	}
	for model, rule := range cfg.Canary {
		if len(rule) == 0 || rule.total() <= 0 {
			return nil, fmt.Errorf("mesh: canary rule for %q has no positive weight", model)
		}
	}
	rt.hc = &healthChecker{
		router:   rt,
		interval: cfg.HealthInterval,
		timeout:  cfg.HealthTimeout,
		after:    cfg.UnhealthyAfter,
	}
	rt.hc.checkAll() // synchronous first round
	rt.hc.start()
	return rt, nil
}

// Close stops the health checker and the proxy transport's idle
// connections. In-flight proxied requests are unaffected. Idempotent.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() {
		rt.hc.stop()
		rt.client.CloseIdleConnections()
	})
}

// Metrics exposes the router's metric families.
func (rt *Router) Metrics() *metrics.Registry { return rt.metrics.reg }

// Handler builds the router's routing table (same absolute /v2 paths as a
// replica, so clients cannot tell the difference).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2", rt.handleServerMetadata)
	mux.HandleFunc("GET /v2/health/live", rt.handleLive)
	mux.HandleFunc("GET /v2/health/ready", rt.handleReady)
	mux.HandleFunc("GET /v2/models", rt.handleModelList)
	mux.HandleFunc("GET /v2/models/{name}", rt.handleByModel)
	mux.HandleFunc("GET /v2/models/{name}/ready", rt.handleByModel)
	mux.HandleFunc("POST /v2/models/{name}/infer", rt.handleInfer)
	mux.HandleFunc("POST /v2/repository/models/{name}/load", rt.handleFanout)
	mux.HandleFunc("POST /v2/repository/models/{name}/unload", rt.handleFanout)
	mux.HandleFunc("DELETE /v2/repository/models/{name}", rt.handleFanout)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

func (rt *Router) handleServerMetadata(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, serve.ServerMetadata{
		Name:       "mnnrouter",
		Version:    serve.Version,
		Extensions: []string{"model_repository", "mesh"},
	})
}

func (rt *Router) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"live": true})
}

// handleReady: the mesh is ready while at least one replica is eligible.
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	for _, rep := range rt.replicas {
		if rep.eligible(now) {
			writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
			return
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ready": false})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rt.metrics.refreshReplicas(rt.replicas)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = rt.metrics.reg.WriteText(w)
}

// handleModelList merges the model lists of every eligible replica.
func (rt *Router) handleModelList(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	names := make(map[string]bool)
	refs := make(map[string]bool)
	answered := false
	for _, rep := range rt.replicas {
		if !rep.eligible(now) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rep.baseURL+"/v2/models", nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			continue
		}
		var list serve.ModelList
		err = json.NewDecoder(io.LimitReader(resp.Body, serve.MaxBodyBytes)).Decode(&list)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		answered = true
		for _, n := range list.Models {
			names[n] = true
		}
		for _, ref := range list.Refs {
			refs[ref] = true
		}
	}
	if !answered {
		rt.metrics.noReplica.Inc()
		writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{Error: "mesh: no replica answered"})
		return
	}
	writeJSON(w, http.StatusOK, serve.ModelList{Models: sortedKeys(names), Refs: sortedKeys(refs)})
}

// handleByModel proxies metadata/readiness to the model's home replica.
func (rt *Router) handleByModel(w http.ResponseWriter, r *http.Request) {
	rt.proxyWithRetry(w, r, r.PathValue("name"), r.URL.Path, nil)
}

// handleFanout broadcasts repository load/unload to every eligible replica
// — a model must exist mesh-wide, wherever its traffic hashes. The response
// reports per-replica outcomes; the overall status is the worst one.
func (rt *Router) handleFanout(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, serve.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "mesh: reading body: " + err.Error()})
		return
	}
	now := time.Now()
	worst := 0
	results := make(map[string]string)
	for _, rep := range rt.replicas {
		if !rep.eligible(now) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method,
			rep.baseURL+r.URL.Path, strings.NewReader(string(body)))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rt.client.Do(req)
		if err != nil {
			results[rep.baseURL] = "error: " + err.Error()
			if worst < http.StatusBadGateway {
				worst = http.StatusBadGateway
			}
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, serve.MaxBodyBytes))
		resp.Body.Close()
		results[rep.baseURL] = resp.Status
		if resp.StatusCode > worst {
			worst = resp.StatusCode
		}
	}
	if len(results) == 0 {
		rt.metrics.noReplica.Inc()
		writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{Error: "mesh: no eligible replica"})
		return
	}
	writeJSON(w, worst, map[string]any{"name": r.PathValue("name"), "replicas": results})
}

// handleInfer is the hot path: canary version selection, shadow duplicate,
// then a bounded-load consistent-hash pick with connection-failure retry.
func (rt *Router) handleInfer(w http.ResponseWriter, r *http.Request) {
	ref := r.PathValue("name")
	name, version := serve.SplitRef(ref)
	if rule, ok := rt.cfg.Canary[name]; ok && version == "" {
		// Canary applies only to unpinned requests: a pinned version is a
		// client decision the router must not override.
		version = rule.pick(rt.randFloat())
		ref = serve.JoinRef(name, version)
		rt.metrics.canary.With(name, version).Inc()
	}
	// The body is buffered so a connection-level failure can replay it on
	// another replica (and the shadow duplicate can reuse it).
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, serve.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "mesh: reading body: " + err.Error()})
		return
	}
	if shadowVersion, ok := rt.cfg.Shadow[name]; ok {
		rt.shadow(name, shadowVersion, r, body)
	}
	rt.proxyWithRetry(w, r, ref, "/v2/models/"+ref+"/infer", body)
}

// shadow fires the duplicate request asynchronously. The client's response
// never waits on it and never observes its outcome.
func (rt *Router) shadow(name, version string, r *http.Request, body []byte) {
	select {
	case rt.shadowSl <- struct{}{}:
	default:
		rt.metrics.shadow.With(name, shadowDropped).Inc()
		return
	}
	ref := serve.JoinRef(name, version)
	header := r.Header.Clone()
	go func() {
		defer func() { <-rt.shadowSl }()
		ctx, cancel := context.WithTimeout(context.Background(), DefaultShadowTimeout)
		defer cancel()
		rep := rt.pick(ref, nil)
		if rep == nil {
			rt.metrics.shadow.With(name, shadowError).Inc()
			return
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			rep.baseURL+"/v2/models/"+ref+"/infer", strings.NewReader(string(body)))
		if err != nil {
			rt.metrics.shadow.With(name, shadowError).Inc()
			return
		}
		copyProxyHeaders(req.Header, header)
		rep.inflight.Add(1)
		resp, err := rt.client.Do(req)
		rep.inflight.Add(-1)
		if err != nil {
			rt.metrics.shadow.With(name, shadowError).Inc()
			return
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, serve.MaxBodyBytes))
		resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			rt.metrics.shadow.With(name, shadowOK).Inc()
		} else {
			rt.metrics.shadow.With(name, shadowError).Inc()
		}
	}()
}

// pick selects the replica for a model reference: walk the ring from the
// key's position, take the first eligible replica under the bounded-load
// limit; when every eligible replica is at the limit, take the least
// loaded (the request must land somewhere — the replicas' own admission
// control is the real backpressure). tried excludes replicas that already
// failed this request.
func (rt *Router) pick(ref string, tried map[*replica]bool) *replica {
	now := time.Now()
	order := rt.ring.walk(ref)
	var eligible []*replica
	var total int64
	// Pass 0 respects per-model avoid marks (Retry-After, quarantine);
	// pass 1 ignores them — when every replica is marked the request must
	// still land somewhere, and the replicas' own gates are authoritative.
	for pass := 0; pass < 2 && len(eligible) == 0; pass++ {
		total = 0
		for _, idx := range order {
			rep := rt.replicas[idx]
			if tried[rep] || !rep.eligible(now) {
				continue
			}
			if pass == 0 && rep.avoided(ref, now) {
				continue
			}
			eligible = append(eligible, rep)
			total += rep.inflight.Load()
		}
	}
	if len(eligible) == 0 {
		return nil
	}
	limit := int64(math.Ceil(rt.cfg.LoadFactor * float64(total+1) / float64(len(eligible))))
	var least *replica
	for _, rep := range eligible {
		n := rep.inflight.Load()
		if n < limit {
			return rep
		}
		if least == nil || n < least.inflight.Load() {
			least = rep
		}
	}
	return least
}

// errTruncatedResponse marks a replica response that died mid-body. The
// replica may have executed the request, so it is surfaced as a typed 502
// and never retried.
var errTruncatedResponse = errors.New("mesh: truncated response from replica")

// bufferedResp is one replica response read fully into memory, so the
// router can inspect it (quarantine marker, truncation) before committing
// bytes to the client.
type bufferedResp struct {
	status int
	header http.Header
	body   []byte
}

// quarantined reports the replica-side crash-quarantine marker.
func (b *bufferedResp) quarantined() bool {
	return b.status == http.StatusServiceUnavailable &&
		b.header.Get("X-Model-Quarantined") == "true"
}

// retryAfter parses the response's Retry-After seconds (0 if absent).
func (b *bufferedResp) retryAfter() time.Duration {
	secs, err := strconv.Atoi(b.header.Get("Retry-After"))
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// proxyWithRetry forwards the request (path already rewritten) to the
// picked replica. Connection-level failures are retried on other replicas
// with capped exponential backoff and full jitter between attempts. An
// HTTP response is final — with two refinements: a 429's Retry-After
// additionally marks the (replica, model) pair to be avoided by later
// picks, and a quarantined 503 is safely re-picked on another replica
// (the gate rejected the request before anything executed). If every
// replica quarantines the model, the last such response is relayed.
func (rt *Router) proxyWithRetry(w http.ResponseWriter, r *http.Request, ref, path string, body []byte) {
	tried := make(map[*replica]bool)
	var lastQuarantined *bufferedResp
	var lastQuarantinedRep *replica
	failures := 0
	for attempt := 0; attempt < len(rt.replicas); attempt++ {
		rep := rt.pick(ref, tried)
		if rep == nil {
			break
		}
		tried[rep] = true
		resp, err := rt.fetch(r, rep, path, body)
		if err != nil {
			if r.Context().Err() != nil {
				// The client went away; the failure says nothing about the
				// replica and there is nobody left to answer.
				return
			}
			if errors.Is(err, errTruncatedResponse) {
				// The replica may have executed the request: not
				// retryable, even though nothing reached the client yet.
				rt.metrics.truncated.With(rep.baseURL).Inc()
				rt.metrics.requests.With(rep.baseURL, strconv.Itoa(http.StatusBadGateway)).Inc()
				writeJSON(w, http.StatusBadGateway,
					serve.ErrorResponse{Error: errTruncatedResponse.Error() + " " + rep.baseURL})
				return
			}
			rep.noteConnFailure(rt.cfg.BreakerThreshold, rt.cfg.BreakerCooldown, time.Now())
			rt.metrics.retries.With(rep.baseURL).Inc()
			if rt.sleep(r.Context(), rt.nextBackoff(failures)) != nil {
				return
			}
			failures++
			continue
		}
		if resp.quarantined() {
			// Route around the crash-quarantined model without dinging the
			// replica's breaker — the replica itself is healthy.
			ttl := resp.retryAfter()
			if ttl <= 0 {
				ttl = DefaultAvoidTTL
			}
			rep.markAvoid(ref, time.Now().Add(ttl))
			rt.metrics.rerouted.With(rep.baseURL).Inc()
			lastQuarantined, lastQuarantinedRep = resp, rep
			continue
		}
		if resp.status == http.StatusTooManyRequests {
			// Relayed verbatim, but remembered: later picks for this model
			// prefer replicas that didn't just shed it.
			ttl := resp.retryAfter()
			if ttl <= 0 {
				ttl = DefaultAvoidTTL
			}
			rep.markAvoid(ref, time.Now().Add(ttl))
		}
		rt.relay(w, rep, resp)
		return
	}
	if lastQuarantined != nil {
		rt.relay(w, lastQuarantinedRep, lastQuarantined)
		return
	}
	rt.metrics.noReplica.Inc()
	writeJSON(w, http.StatusServiceUnavailable,
		serve.ErrorResponse{Error: fmt.Sprintf("mesh: no eligible replica for %q", ref)})
}

// fetch proxies one attempt and buffers the whole response. A non-nil
// error is either a connection-level failure (nothing was received — safe
// to retry) or errTruncatedResponse (the body died mid-stream — final).
func (rt *Router) fetch(r *http.Request, rep *replica, path string, body []byte) (*bufferedResp, error) {
	var rdr io.Reader
	if body != nil {
		rdr = strings.NewReader(string(body))
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, rep.baseURL+path, rdr)
	if err != nil {
		return nil, fmt.Errorf("mesh: building request: %w", err)
	}
	copyProxyHeaders(req.Header, r.Header)
	rep.inflight.Add(1)
	start := time.Now()
	resp, err := rt.client.Do(req)
	rep.inflight.Add(-1)
	rt.metrics.proxyDur.With(rep.baseURL).Observe(time.Since(start).Seconds())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, serve.MaxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errTruncatedResponse, err)
	}
	rep.noteSuccess()
	return &bufferedResp{status: resp.StatusCode, header: resp.Header, body: buf}, nil
}

// relay commits one buffered replica response to the client verbatim.
func (rt *Router) relay(w http.ResponseWriter, rep *replica, resp *bufferedResp) {
	rt.metrics.requests.With(rep.baseURL, strconv.Itoa(resp.status)).Inc()
	h := w.Header()
	for k, vs := range resp.header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	// Which replica served — observable rebalancing for tests and debugging.
	h.Set("X-Mesh-Replica", rep.baseURL)
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// copyProxyHeaders copies end-to-end headers, dropping hop-by-hop ones.
func copyProxyHeaders(dst, src http.Header) {
	for k, vs := range src {
		switch http.CanonicalHeaderKey(k) {
		case "Connection", "Keep-Alive", "Proxy-Connection", "Transfer-Encoding", "Upgrade", "Te", "Trailer":
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
