// Package mesh is the distributed front door of the serving tier: a router
// that spreads /v2 inference traffic across N mnnserve replicas.
//
// Placement uses consistent hashing on the model reference
// ("name:version") with a bounded-load variant: each model has a home
// replica, and requests spill to the next replica on the ring only when the
// home is above its fair share of in-flight load (factor × mean). Sticky
// placement is what makes memory-budgeted replicas effective — each replica
// keeps a disjoint subset of the catalogue resident instead of every
// replica thrashing all models — while the load bound keeps one hot model
// from melting a single replica.
//
// Replica failure is handled three ways, fastest first:
//
//   - retry: a connection-level failure (dial refused, reset before any
//     response) is transparently retried on the next replica in ring order.
//     An HTTP response is NEVER retried — in particular a 429 carries
//     admission-control semantics (the model's queue is full; another
//     replica would not have its engines warm) and passes through verbatim,
//     Retry-After included.
//   - circuit breaking: after BreakerThreshold consecutive connection
//     failures a replica is skipped for BreakerCooldown, then a single
//     request probes it (half-open).
//   - active health checks: GET /v2 on every replica each HealthInterval;
//     UnhealthyAfter consecutive failures eject the replica from selection,
//     one success reinstates it.
//
// Two version-aware traffic policies run at the router:
//
//   - canary: requests that do not pin a version are split between versions
//     by weight ("resnet=1:90,2:10"). Pinned requests bypass the canary.
//   - shadow: requests for a model are duplicated to a shadow version on
//     its own replica; the shadow response is always discarded, and shadow
//     failures never surface to clients.
package mesh

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"mnn/internal/metrics"
	"mnn/serve"
)

// Defaults for Config's zero values.
const (
	DefaultHealthInterval   = 2 * time.Second
	DefaultHealthTimeout    = time.Second
	DefaultUnhealthyAfter   = 2
	DefaultLoadFactor       = 1.25
	DefaultVNodes           = 64
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 5 * time.Second
	DefaultShadowInflight   = 64
	DefaultShadowTimeout    = 30 * time.Second
)

// Config parameterizes a Router.
type Config struct {
	// Replicas are the mnnserve base URLs ("http://host:port"), required.
	Replicas []string

	// HealthInterval is the active health-check period (default 2s).
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (default 1s).
	HealthTimeout time.Duration
	// UnhealthyAfter ejects a replica after that many consecutive failed
	// checks (default 2); one passing check reinstates it.
	UnhealthyAfter int

	// LoadFactor is the bounded-load limit: a replica accepts a request for
	// its model only while its in-flight count is below
	// ceil(factor × (total in-flight + 1) / eligible replicas); above it the
	// request spills along the ring (default 1.25).
	LoadFactor float64
	// VNodes is the virtual nodes per replica on the hash ring (default 64).
	VNodes int

	// BreakerThreshold opens a replica's circuit after that many
	// consecutive connection-level failures (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit skips the replica before
	// a half-open probe (default 5s).
	BreakerCooldown time.Duration

	// Canary maps a model name to its weighted version split for unpinned
	// requests.
	Canary map[string]CanaryRule
	// Shadow maps a model name to the version that receives a discarded
	// duplicate of its traffic.
	Shadow map[string]string
	// ShadowInflight caps concurrent shadow duplicates (default 64);
	// excess duplicates are dropped, never queued against client latency.
	ShadowInflight int

	// Transport overrides the proxy transport (default: keep-alive pooled).
	Transport http.RoundTripper
}

func (c *Config) applyDefaults() {
	if c.HealthInterval <= 0 {
		c.HealthInterval = DefaultHealthInterval
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = DefaultHealthTimeout
	}
	if c.UnhealthyAfter <= 0 {
		c.UnhealthyAfter = DefaultUnhealthyAfter
	}
	if c.LoadFactor <= 1 {
		c.LoadFactor = DefaultLoadFactor
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.ShadowInflight <= 0 {
		c.ShadowInflight = DefaultShadowInflight
	}
	if c.Transport == nil {
		c.Transport = &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 128,
			IdleConnTimeout:     90 * time.Second,
		}
	}
}

// Router proxies the /v2 protocol across replicas. Create with New, mount
// Handler, stop with Close.
type Router struct {
	cfg      Config
	replicas []*replica
	ring     *ring
	client   *http.Client
	metrics  *routerMetrics
	hc       *healthChecker
	shadowSl chan struct{}
}

// New validates the configuration, runs one synchronous health round (so a
// router that starts against live replicas routes immediately), and starts
// the periodic checker.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("mesh: no replicas configured")
	}
	cfg.applyDefaults()
	rt := &Router{
		cfg:      cfg,
		ring:     newRing(len(cfg.Replicas), cfg.VNodes),
		client:   &http.Client{Transport: cfg.Transport},
		metrics:  newRouterMetrics(),
		shadowSl: make(chan struct{}, cfg.ShadowInflight),
	}
	seen := make(map[string]bool)
	for _, raw := range cfg.Replicas {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("mesh: replica %q is not a base URL like http://host:port", raw)
		}
		base := strings.TrimRight(u.String(), "/")
		if seen[base] {
			return nil, fmt.Errorf("mesh: duplicate replica %q", base)
		}
		seen[base] = true
		rt.replicas = append(rt.replicas, &replica{baseURL: base})
		rt.metrics.initReplica(base)
	}
	for model, rule := range cfg.Canary {
		if len(rule) == 0 || rule.total() <= 0 {
			return nil, fmt.Errorf("mesh: canary rule for %q has no positive weight", model)
		}
	}
	rt.hc = &healthChecker{
		router:   rt,
		interval: cfg.HealthInterval,
		timeout:  cfg.HealthTimeout,
		after:    cfg.UnhealthyAfter,
	}
	rt.hc.checkAll() // synchronous first round
	rt.hc.start()
	return rt, nil
}

// Close stops the health checker and the proxy transport's idle
// connections. In-flight proxied requests are unaffected.
func (rt *Router) Close() {
	rt.hc.stop()
	rt.client.CloseIdleConnections()
}

// Metrics exposes the router's metric families.
func (rt *Router) Metrics() *metrics.Registry { return rt.metrics.reg }

// Handler builds the router's routing table (same absolute /v2 paths as a
// replica, so clients cannot tell the difference).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2", rt.handleServerMetadata)
	mux.HandleFunc("GET /v2/health/live", rt.handleLive)
	mux.HandleFunc("GET /v2/health/ready", rt.handleReady)
	mux.HandleFunc("GET /v2/models", rt.handleModelList)
	mux.HandleFunc("GET /v2/models/{name}", rt.handleByModel)
	mux.HandleFunc("GET /v2/models/{name}/ready", rt.handleByModel)
	mux.HandleFunc("POST /v2/models/{name}/infer", rt.handleInfer)
	mux.HandleFunc("POST /v2/repository/models/{name}/load", rt.handleFanout)
	mux.HandleFunc("POST /v2/repository/models/{name}/unload", rt.handleFanout)
	mux.HandleFunc("DELETE /v2/repository/models/{name}", rt.handleFanout)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

func (rt *Router) handleServerMetadata(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, serve.ServerMetadata{
		Name:       "mnnrouter",
		Version:    serve.Version,
		Extensions: []string{"model_repository", "mesh"},
	})
}

func (rt *Router) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"live": true})
}

// handleReady: the mesh is ready while at least one replica is eligible.
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	for _, rep := range rt.replicas {
		if rep.eligible(now) {
			writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
			return
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ready": false})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rt.metrics.refreshReplicas(rt.replicas)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = rt.metrics.reg.WriteText(w)
}

// handleModelList merges the model lists of every eligible replica.
func (rt *Router) handleModelList(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	names := make(map[string]bool)
	refs := make(map[string]bool)
	answered := false
	for _, rep := range rt.replicas {
		if !rep.eligible(now) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rep.baseURL+"/v2/models", nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			continue
		}
		var list serve.ModelList
		err = json.NewDecoder(io.LimitReader(resp.Body, serve.MaxBodyBytes)).Decode(&list)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		answered = true
		for _, n := range list.Models {
			names[n] = true
		}
		for _, ref := range list.Refs {
			refs[ref] = true
		}
	}
	if !answered {
		rt.metrics.noReplica.Inc()
		writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{Error: "mesh: no replica answered"})
		return
	}
	writeJSON(w, http.StatusOK, serve.ModelList{Models: sortedKeys(names), Refs: sortedKeys(refs)})
}

// handleByModel proxies metadata/readiness to the model's home replica.
func (rt *Router) handleByModel(w http.ResponseWriter, r *http.Request) {
	rt.proxyWithRetry(w, r, r.PathValue("name"), r.URL.Path, nil)
}

// handleFanout broadcasts repository load/unload to every eligible replica
// — a model must exist mesh-wide, wherever its traffic hashes. The response
// reports per-replica outcomes; the overall status is the worst one.
func (rt *Router) handleFanout(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, serve.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "mesh: reading body: " + err.Error()})
		return
	}
	now := time.Now()
	worst := 0
	results := make(map[string]string)
	for _, rep := range rt.replicas {
		if !rep.eligible(now) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method,
			rep.baseURL+r.URL.Path, strings.NewReader(string(body)))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rt.client.Do(req)
		if err != nil {
			results[rep.baseURL] = "error: " + err.Error()
			if worst < http.StatusBadGateway {
				worst = http.StatusBadGateway
			}
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, serve.MaxBodyBytes))
		resp.Body.Close()
		results[rep.baseURL] = resp.Status
		if resp.StatusCode > worst {
			worst = resp.StatusCode
		}
	}
	if len(results) == 0 {
		rt.metrics.noReplica.Inc()
		writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{Error: "mesh: no eligible replica"})
		return
	}
	writeJSON(w, worst, map[string]any{"name": r.PathValue("name"), "replicas": results})
}

// handleInfer is the hot path: canary version selection, shadow duplicate,
// then a bounded-load consistent-hash pick with connection-failure retry.
func (rt *Router) handleInfer(w http.ResponseWriter, r *http.Request) {
	ref := r.PathValue("name")
	name, version := serve.SplitRef(ref)
	if rule, ok := rt.cfg.Canary[name]; ok && version == "" {
		// Canary applies only to unpinned requests: a pinned version is a
		// client decision the router must not override.
		version = rule.pick(rand.Float64())
		ref = serve.JoinRef(name, version)
		rt.metrics.canary.With(name, version).Inc()
	}
	// The body is buffered so a connection-level failure can replay it on
	// another replica (and the shadow duplicate can reuse it).
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, serve.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "mesh: reading body: " + err.Error()})
		return
	}
	if shadowVersion, ok := rt.cfg.Shadow[name]; ok {
		rt.shadow(name, shadowVersion, r, body)
	}
	rt.proxyWithRetry(w, r, ref, "/v2/models/"+ref+"/infer", body)
}

// shadow fires the duplicate request asynchronously. The client's response
// never waits on it and never observes its outcome.
func (rt *Router) shadow(name, version string, r *http.Request, body []byte) {
	select {
	case rt.shadowSl <- struct{}{}:
	default:
		rt.metrics.shadow.With(name, shadowDropped).Inc()
		return
	}
	ref := serve.JoinRef(name, version)
	header := r.Header.Clone()
	go func() {
		defer func() { <-rt.shadowSl }()
		ctx, cancel := context.WithTimeout(context.Background(), DefaultShadowTimeout)
		defer cancel()
		rep := rt.pick(ref, nil)
		if rep == nil {
			rt.metrics.shadow.With(name, shadowError).Inc()
			return
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			rep.baseURL+"/v2/models/"+ref+"/infer", strings.NewReader(string(body)))
		if err != nil {
			rt.metrics.shadow.With(name, shadowError).Inc()
			return
		}
		copyProxyHeaders(req.Header, header)
		rep.inflight.Add(1)
		resp, err := rt.client.Do(req)
		rep.inflight.Add(-1)
		if err != nil {
			rt.metrics.shadow.With(name, shadowError).Inc()
			return
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, serve.MaxBodyBytes))
		resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			rt.metrics.shadow.With(name, shadowOK).Inc()
		} else {
			rt.metrics.shadow.With(name, shadowError).Inc()
		}
	}()
}

// pick selects the replica for a model reference: walk the ring from the
// key's position, take the first eligible replica under the bounded-load
// limit; when every eligible replica is at the limit, take the least
// loaded (the request must land somewhere — the replicas' own admission
// control is the real backpressure). tried excludes replicas that already
// failed this request.
func (rt *Router) pick(ref string, tried map[*replica]bool) *replica {
	now := time.Now()
	order := rt.ring.walk(ref)
	var eligible []*replica
	var total int64
	for _, idx := range order {
		rep := rt.replicas[idx]
		if tried[rep] || !rep.eligible(now) {
			continue
		}
		eligible = append(eligible, rep)
		total += rep.inflight.Load()
	}
	if len(eligible) == 0 {
		return nil
	}
	limit := int64(math.Ceil(rt.cfg.LoadFactor * float64(total+1) / float64(len(eligible))))
	var least *replica
	for _, rep := range eligible {
		n := rep.inflight.Load()
		if n < limit {
			return rep
		}
		if least == nil || n < least.inflight.Load() {
			least = rep
		}
	}
	return least
}

// proxyWithRetry forwards the request (path already rewritten) to the
// picked replica, retrying connection-level failures on other replicas.
// Any HTTP response — success, 4xx, 429, 5xx — is returned to the client
// verbatim and never retried.
func (rt *Router) proxyWithRetry(w http.ResponseWriter, r *http.Request, ref, path string, body []byte) {
	tried := make(map[*replica]bool)
	for attempt := 0; attempt < len(rt.replicas); attempt++ {
		rep := rt.pick(ref, tried)
		if rep == nil {
			break
		}
		tried[rep] = true
		err := rt.forward(w, r, rep, path, body)
		if err == nil {
			return
		}
		if r.Context().Err() != nil {
			// The client went away; the failure says nothing about the
			// replica and there is nobody left to answer.
			return
		}
		rep.noteConnFailure(rt.cfg.BreakerThreshold, rt.cfg.BreakerCooldown, time.Now())
		rt.metrics.retries.With(rep.baseURL).Inc()
	}
	rt.metrics.noReplica.Inc()
	writeJSON(w, http.StatusServiceUnavailable,
		serve.ErrorResponse{Error: fmt.Sprintf("mesh: no eligible replica for %q", ref)})
}

// forward proxies one attempt. A non-nil error means a connection-level
// failure with nothing written to the client (safe to retry); once a
// response arrives it is relayed and the attempt is final.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, rep *replica, path string, body []byte) error {
	var rdr io.Reader
	if body != nil {
		rdr = strings.NewReader(string(body))
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, rep.baseURL+path, rdr)
	if err != nil {
		// Malformed target, not a replica failure; nothing will fix it.
		writeJSON(w, http.StatusInternalServerError, serve.ErrorResponse{Error: "mesh: " + err.Error()})
		return nil
	}
	copyProxyHeaders(req.Header, r.Header)
	rep.inflight.Add(1)
	start := time.Now()
	resp, err := rt.client.Do(req)
	rep.inflight.Add(-1)
	rt.metrics.proxyDur.With(rep.baseURL).Observe(time.Since(start).Seconds())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	rep.noteSuccess()
	rt.metrics.requests.With(rep.baseURL, strconv.Itoa(resp.StatusCode)).Inc()
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	// Which replica served — observable rebalancing for tests and debugging.
	h.Set("X-Mesh-Replica", rep.baseURL)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return nil
}

// copyProxyHeaders copies end-to-end headers, dropping hop-by-hop ones.
func copyProxyHeaders(dst, src http.Header) {
	for k, vs := range src {
		switch http.CanonicalHeaderKey(k) {
		case "Connection", "Keep-Alive", "Proxy-Connection", "Transfer-Encoding", "Upgrade", "Te", "Trailer":
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
