package mesh

import (
	"time"

	"mnn/internal/metrics"
)

// routerMetrics is the router's own /metrics surface (distinct from each
// replica's serving metrics): where traffic went, what was retried, which
// replicas are in or out, and what the traffic policies did.
type routerMetrics struct {
	reg *metrics.Registry

	requests  *metrics.CounterVec   // mnn_mesh_requests_total{replica,code}
	retries   *metrics.CounterVec   // mnn_mesh_retries_total{replica}
	noReplica *metrics.Counter      // mnn_mesh_no_replica_total
	proxyDur  *metrics.HistogramVec // mnn_mesh_proxy_duration_seconds{replica}
	rerouted  *metrics.CounterVec   // mnn_mesh_quarantine_reroutes_total{replica}
	truncated *metrics.CounterVec   // mnn_mesh_truncated_responses_total{replica}

	replicaHealthy  *metrics.GaugeVec // mnn_mesh_replica_healthy{replica}
	replicaInflight *metrics.GaugeVec // mnn_mesh_replica_inflight{replica}
	circuitOpen     *metrics.GaugeVec // mnn_mesh_circuit_open{replica}

	healthTransitions *metrics.Counter // mnn_mesh_health_transitions_total

	canary *metrics.CounterVec // mnn_mesh_canary_total{model,version}
	shadow *metrics.CounterVec // mnn_mesh_shadow_total{model,outcome}
}

// Shadow outcome label values.
const (
	shadowOK      = "ok"      // shadow replica answered 2xx
	shadowError   = "error"   // connection failure or non-2xx
	shadowDropped = "dropped" // concurrency cap hit, duplicate not sent
)

func newRouterMetrics() *routerMetrics {
	r := metrics.NewRegistry()
	return &routerMetrics{
		reg: r,
		requests: r.NewCounter("mnn_mesh_requests_total",
			"Requests proxied, by replica and HTTP status code returned to the client.",
			"replica", "code"),
		retries: r.NewCounter("mnn_mesh_retries_total",
			"Connection-level failures that were retried on another replica, by the replica that failed.",
			"replica"),
		noReplica: r.NewCounter("mnn_mesh_no_replica_total",
			"Requests failed with 503 because no eligible replica remained.").With(),
		proxyDur: r.NewHistogram("mnn_mesh_proxy_duration_seconds",
			"Proxy round-trip time per replica (connection + replica processing).", nil, "replica"),
		rerouted: r.NewCounter("mnn_mesh_quarantine_reroutes_total",
			"Requests re-picked onto another replica because this one answered 503 X-Model-Quarantined.",
			"replica"),
		truncated: r.NewCounter("mnn_mesh_truncated_responses_total",
			"Replica responses that died mid-body and were surfaced as typed 502s (never retried).",
			"replica"),
		replicaHealthy: r.NewGauge("mnn_mesh_replica_healthy",
			"1 while the replica passes active health checks.", "replica"),
		replicaInflight: r.NewGauge("mnn_mesh_replica_inflight",
			"Requests currently outstanding against the replica (the bounded-load measure).",
			"replica"),
		circuitOpen: r.NewGauge("mnn_mesh_circuit_open",
			"1 while the replica's circuit breaker is open (skipped after repeated connection failures).",
			"replica"),
		healthTransitions: r.NewCounter("mnn_mesh_health_transitions_total",
			"Replica health state changes (either direction) observed by the checker.").With(),
		canary: r.NewCounter("mnn_mesh_canary_total",
			"Canary decisions for unpinned requests, by model and chosen version.",
			"model", "version"),
		shadow: r.NewCounter("mnn_mesh_shadow_total",
			"Shadow duplicates by model and outcome (ok, error, dropped); responses are always discarded.",
			"model", "outcome"),
	}
}

// initReplica zero-fills every per-replica series so a scrape shows the
// whole mesh before the first request.
func (m *routerMetrics) initReplica(name string) {
	m.requests.With(name, "200")
	m.retries.With(name)
	m.proxyDur.With(name)
	m.rerouted.With(name)
	m.truncated.With(name)
	m.replicaHealthy.With(name).Set(0)
	m.replicaInflight.With(name).Set(0)
	m.circuitOpen.With(name).Set(0)
}

// refreshReplicas pulls the scrape-time replica gauges.
func (m *routerMetrics) refreshReplicas(reps []*replica) {
	now := time.Now()
	for _, rep := range reps {
		if rep.healthy.Load() {
			m.replicaHealthy.With(rep.baseURL).Set(1)
		} else {
			m.replicaHealthy.With(rep.baseURL).Set(0)
		}
		m.replicaInflight.With(rep.baseURL).Set(float64(rep.inflight.Load()))
		if now.UnixNano() < rep.openUntil.Load() {
			m.circuitOpen.With(rep.baseURL).Set(1)
		} else {
			m.circuitOpen.With(rep.baseURL).Set(0)
		}
	}
}
