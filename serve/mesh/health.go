package mesh

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// replica is the router's view of one mnnserve backend. All state is
// atomic: the request path reads eligibility and load without locks.
type replica struct {
	baseURL string

	// healthy is driven by the active health checker (GET /v2 every
	// HealthInterval). A replica starts unknown and is only routed to after
	// its first passing check.
	healthy     atomic.Bool
	consecBad   atomic.Int32 // consecutive failed health checks
	everHealthy atomic.Bool

	// inflight counts proxied requests currently outstanding — the load
	// measure of the bounded-load hash.
	inflight atomic.Int64

	// Circuit breaker over connection-level proxy failures: after
	// BreakerThreshold consecutive failures the replica is skipped until
	// openUntil, then one request probes it (half-open).
	consecConnFails atomic.Int32
	openUntil       atomic.Int64 // unix nanos; 0 = closed

	// avoid holds per-model do-not-route marks: a 429's Retry-After and a
	// quarantined 503 both say "this model, on this replica, not now" —
	// the replica stays fully eligible for every other model.
	avoidMu sync.Mutex
	avoid   map[string]int64 // ref → unix nanos
}

// markAvoid records a per-model avoid mark until the given time.
func (r *replica) markAvoid(ref string, until time.Time) {
	r.avoidMu.Lock()
	if r.avoid == nil {
		r.avoid = make(map[string]int64)
	}
	r.avoid[ref] = until.UnixNano()
	r.avoidMu.Unlock()
}

// avoided reports (and lazily expires) the model's avoid mark.
func (r *replica) avoided(ref string, now time.Time) bool {
	r.avoidMu.Lock()
	defer r.avoidMu.Unlock()
	until, ok := r.avoid[ref]
	if !ok {
		return false
	}
	if now.UnixNano() >= until {
		delete(r.avoid, ref)
		return false
	}
	return true
}

// eligible reports whether the selection path may route to the replica:
// health-checked OK and circuit not open. A breaker past its cooldown
// counts as eligible (half-open: the next request is the probe).
func (r *replica) eligible(now time.Time) bool {
	return r.healthy.Load() && now.UnixNano() >= r.openUntil.Load()
}

// noteConnFailure records one connection-level proxy failure and opens the
// circuit after threshold consecutive ones.
func (r *replica) noteConnFailure(threshold int, cooldown time.Duration, now time.Time) {
	if int(r.consecConnFails.Add(1)) >= threshold {
		r.openUntil.Store(now.Add(cooldown).UnixNano())
	}
}

// noteSuccess closes the circuit.
func (r *replica) noteSuccess() {
	r.consecConnFails.Store(0)
	r.openUntil.Store(0)
}

// healthChecker probes every replica's GET /v2 endpoint on a fixed
// interval. A replica is ejected after UnhealthyAfter consecutive failures
// and reinstated by a single success (fast recovery: a restarted replica
// rejoins within one interval).
type healthChecker struct {
	router   *Router
	interval time.Duration
	timeout  time.Duration
	after    int

	quit chan struct{}
	done chan struct{}
}

func (hc *healthChecker) start() {
	hc.quit = make(chan struct{})
	hc.done = make(chan struct{})
	go func() {
		defer close(hc.done)
		t := time.NewTicker(hc.interval)
		defer t.Stop()
		for {
			select {
			case <-hc.quit:
				return
			case <-t.C:
				hc.checkAll()
			}
		}
	}()
}

func (hc *healthChecker) stop() {
	close(hc.quit)
	<-hc.done
}

// checkAll probes every replica concurrently and waits for the round.
func (hc *healthChecker) checkAll() {
	var wg sync.WaitGroup
	for _, rep := range hc.router.replicas {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			hc.checkOne(rep)
		}(rep)
	}
	wg.Wait()
	hc.router.metrics.refreshReplicas(hc.router.replicas)
}

func (hc *healthChecker) checkOne(rep *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), hc.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.baseURL+"/v2", nil)
	if err != nil {
		hc.observe(rep, false)
		return
	}
	resp, err := hc.router.client.Do(req)
	if err != nil {
		hc.observe(rep, false)
		return
	}
	resp.Body.Close()
	hc.observe(rep, resp.StatusCode == http.StatusOK)
}

func (hc *healthChecker) observe(rep *replica, ok bool) {
	if ok {
		rep.consecBad.Store(0)
		if !rep.healthy.Swap(true) {
			hc.router.metrics.healthTransitions.Inc()
		}
		rep.everHealthy.Store(true)
		// A passing health check also closes the circuit: the replica
		// answers again, whatever tripped the breaker is gone.
		rep.noteSuccess()
		return
	}
	if int(rep.consecBad.Add(1)) >= hc.after {
		if rep.healthy.Swap(false) {
			hc.router.metrics.healthTransitions.Inc()
		}
	}
}
