package serve

import (
	"strconv"
	"sync"
	"time"

	"mnn/internal/metrics"
	"mnn/serve/admission"
)

// serverMetrics bundles the metric families one Registry exports on
// /metrics. All families are registered up front so every scrape shows the
// full schema; per-model children are created at model load time so a model
// is visible (with zeroes) before its first request.
//
// Children are keyed by registry model name and survive hot swaps — a
// reloaded model continues its counters, which is what Prometheus rate()
// queries want. Unloading a model freezes its series at their last values.
type serverMetrics struct {
	reg *metrics.Registry

	queueWait  *metrics.HistogramVec // mnn_queue_wait_seconds{model}
	inferDur   *metrics.HistogramVec // mnn_infer_duration_seconds{model}
	requests   *metrics.CounterVec   // mnn_requests_total{model,code}
	shed       *metrics.CounterVec   // mnn_shed_total{model,reason}
	queueDepth *metrics.GaugeVec     // mnn_queue_depth{model}
	queueCap   *metrics.GaugeVec     // mnn_queue_capacity{model}
	inflight   *metrics.GaugeVec     // mnn_inflight_requests{model}

	batchFlushes *metrics.CounterVec // mnn_batch_flushes_total{model}
	batchedReqs  *metrics.CounterVec // mnn_batched_requests_total{model}
	batchFill    *metrics.GaugeVec   // mnn_batch_fill_ratio{model}

	bucketDepth  *metrics.GaugeVec   // mnn_batch_bucket_depth{model,bucket}
	bucketAge    *metrics.GaugeVec   // mnn_batch_bucket_age_seconds{model,bucket}
	bucketFill   *metrics.GaugeVec   // mnn_batch_bucket_fill_ratio{model,bucket}
	bucketCount  *metrics.GaugeVec   // mnn_batch_buckets{model}
	bucketEvicts *metrics.CounterVec // mnn_batch_bucket_evictions_total{model}

	degraded    *metrics.GaugeVec   // mnn_degraded{model}
	transitions *metrics.CounterVec // mnn_degrade_transitions_total{model}

	loads         *metrics.CounterVec // mnn_model_loads_total{model}
	evictions     *metrics.CounterVec // mnn_model_evictions_total{model}
	resident      *metrics.GaugeVec   // mnn_model_resident_bytes{model}
	residentTotal *metrics.Gauge      // mnn_resident_bytes
	memoryBudget  *metrics.Gauge      // mnn_memory_budget_bytes

	kernelPanics *metrics.CounterVec // mnn_kernel_panics_total{model}
	quarantines  *metrics.CounterVec // mnn_model_quarantines_total{model}
	quarantined  *metrics.GaugeVec   // mnn_model_quarantined{model}
}

func newServerMetrics() *serverMetrics {
	r := metrics.NewRegistry()
	return &serverMetrics{
		reg: r,
		queueWait: r.NewHistogram("mnn_queue_wait_seconds",
			"Time requests spent waiting for an execution slot, per model.", nil, "model"),
		inferDur: r.NewHistogram("mnn_infer_duration_seconds",
			"Inference execution time (after admission), per model.", nil, "model"),
		requests: r.NewCounter("mnn_requests_total",
			"Inference requests by model and HTTP status code; rate() of this is per-model QPS.",
			"model", "code"),
		shed: r.NewCounter("mnn_shed_total",
			"Requests rejected by admission control, by model and reason (queue_full, deadline).",
			"model", "reason"),
		queueDepth: r.NewGauge("mnn_queue_depth",
			"Requests currently waiting in the admission queue, per model.", "model"),
		queueCap: r.NewGauge("mnn_queue_capacity",
			"Admission queue capacity, per model (0 = admission control off).", "model"),
		inflight: r.NewGauge("mnn_inflight_requests",
			"Requests currently executing, per model.", "model"),
		batchFlushes: r.NewCounter("mnn_batch_flushes_total",
			"Micro-batcher flushes (full and partial), per model.", "model"),
		batchedReqs: r.NewCounter("mnn_batched_requests_total",
			"Requests that went through micro-batcher flushes, per model.", "model"),
		batchFill: r.NewGauge("mnn_batch_fill_ratio",
			"Cumulative micro-batch fill: batched requests / (flushes × max batch).", "model"),
		bucketDepth: r.NewGauge("mnn_batch_bucket_depth",
			"Requests queued in one shape bucket at scrape time.", "model", "bucket"),
		bucketAge: r.NewGauge("mnn_batch_bucket_age_seconds",
			"Age of the oldest request queued in one shape bucket at scrape time.", "model", "bucket"),
		bucketFill: r.NewGauge("mnn_batch_bucket_fill_ratio",
			"Cumulative per-bucket batch fill: batched requests / (flushes × max batch).", "model", "bucket"),
		bucketCount: r.NewGauge("mnn_batch_buckets",
			"Shape buckets currently tracked by the model's batcher.", "model"),
		bucketEvicts: r.NewCounter("mnn_batch_bucket_evictions_total",
			"Shape buckets evicted (engine closed) under the bucket bound, per model.", "model"),
		degraded: r.NewGauge("mnn_degraded",
			"1 while the model is routed to its degrade engine under sustained overload.", "model"),
		transitions: r.NewCounter("mnn_degrade_transitions_total",
			"Degrade state changes (either direction), per model.", "model"),
		loads: r.NewCounter("mnn_model_loads_total",
			"Engine loads per model (eager load, first lazy load, and every reload after eviction).",
			"model"),
		evictions: r.NewCounter("mnn_model_evictions_total",
			"Idle-model evictions under memory-budget pressure, per model.", "model"),
		resident: r.NewGauge("mnn_model_resident_bytes",
			"Byte-accounted size of the model's resident engines (0 while evicted).", "model"),
		residentTotal: r.NewGauge("mnn_resident_bytes",
			"Byte-accounted size of all resident engines in the registry.").With(),
		memoryBudget: r.NewGauge("mnn_memory_budget_bytes",
			"Configured memory budget (0 = unlimited, nothing is evicted).").With(),
		kernelPanics: r.NewCounter("mnn_kernel_panics_total",
			"Kernel panics contained by the crash barrier (request got a typed 500), per model.",
			"model"),
		quarantines: r.NewCounter("mnn_model_quarantines_total",
			"Times a model was quarantined after repeated kernel panics, per model.", "model"),
		quarantined: r.NewGauge("mnn_model_quarantined",
			"1 while the model is quarantined (requests fail fast with 503).", "model"),
	}
}

// modelMetrics holds one model's resolved children so the hot path never
// takes the family lookup lock, plus the micro-batch fill accounting.
type modelMetrics struct {
	sm   *serverMetrics
	name string

	queueWait     *metrics.Histogram
	inferDur      *metrics.Histogram
	queueDepth    *metrics.Gauge
	queueCap      *metrics.Gauge
	inflight      *metrics.Gauge
	degraded      *metrics.Gauge
	transitions   *metrics.Counter
	loads         *metrics.Counter
	evictions     *metrics.Counter
	residentBytes *metrics.Gauge
	kernelPanics  *metrics.Counter
	quarantines   *metrics.Counter
	quarantined   *metrics.Gauge

	mu       sync.Mutex
	flushes  uint64
	samples  uint64
	maxBatch int
	// seenBuckets tracks which bucket-label children exist so the series
	// of evicted buckets are deleted at the next scrape.
	seenBuckets map[string]bool
}

// forModel resolves (and zero-initializes) the children for one model.
func (sm *serverMetrics) forModel(name string, queueCap, maxBatch int) *modelMetrics {
	mm := &modelMetrics{
		sm: sm, name: name, maxBatch: maxBatch,
		queueWait:   sm.queueWait.With(name),
		inferDur:    sm.inferDur.With(name),
		queueDepth:  sm.queueDepth.With(name),
		queueCap:    sm.queueCap.With(name),
		inflight:    sm.inflight.With(name),
		degraded:      sm.degraded.With(name),
		transitions:   sm.transitions.With(name),
		loads:         sm.loads.With(name),
		evictions:     sm.evictions.With(name),
		residentBytes: sm.resident.With(name),
		kernelPanics:  sm.kernelPanics.With(name),
		quarantines:   sm.quarantines.With(name),
		quarantined:   sm.quarantined.With(name),
	}
	mm.queueDepth.Set(0)
	mm.queueCap.Set(float64(queueCap))
	mm.inflight.Set(0)
	mm.degraded.Set(0)
	mm.residentBytes.Set(0)
	mm.quarantined.Set(0)
	// Shed reasons appear with zeroes so dashboards see the series before
	// the first overload.
	sm.shed.With(name, admission.ReasonQueueFull)
	sm.shed.With(name, admission.ReasonDeadline)
	if maxBatch > 1 {
		sm.batchFlushes.With(name)
		sm.batchedReqs.With(name)
		sm.batchFill.With(name).Set(0)
		sm.bucketCount.With(name).Set(0)
		sm.bucketEvicts.With(name)
	}
	return mm
}

func (mm *modelMetrics) observeQueueWait(d time.Duration) { mm.queueWait.Observe(d.Seconds()) }
func (mm *modelMetrics) observeInfer(d time.Duration)     { mm.inferDur.Observe(d.Seconds()) }

func (mm *modelMetrics) observeShed(reason string) { mm.sm.shed.With(mm.name, reason).Inc() }

func (mm *modelMetrics) observeRequest(code int) {
	mm.sm.requests.With(mm.name, strconv.Itoa(code)).Inc()
}

// onDegrade is wired as the admission controller's OnDegrade callback.
func (mm *modelMetrics) onDegrade(degraded bool) {
	if degraded {
		mm.degraded.Set(1)
	} else {
		mm.degraded.Set(0)
	}
	mm.transitions.Inc()
}

// recordFlush is wired as the batcher's flush hook; it keeps the cumulative
// fill ratio current.
func (mm *modelMetrics) recordFlush(n int) {
	mm.mu.Lock()
	mm.flushes++
	mm.samples += uint64(n)
	fill := float64(mm.samples) / (float64(mm.flushes) * float64(mm.maxBatch))
	mm.mu.Unlock()
	mm.sm.batchFlushes.With(mm.name).Inc()
	mm.sm.batchedReqs.With(mm.name).Add(float64(n))
	mm.sm.batchFill.With(mm.name).Set(fill)
}

// onBucketEvict is wired as the batcher's eviction hook.
func (mm *modelMetrics) onBucketEvict() { mm.sm.bucketEvicts.With(mm.name).Inc() }

// refreshBuckets publishes the batcher's per-bucket scrape-time gauges and
// deletes the series of buckets that no longer exist (evicted, or the
// whole batcher gone with an evicted model).
func (mm *modelMetrics) refreshBuckets(st batcherStats) {
	current := make(map[string]bool, len(st.buckets))
	for _, bs := range st.buckets {
		current[bs.sig] = true
		mm.sm.bucketDepth.With(mm.name, bs.sig).Set(float64(bs.depth))
		mm.sm.bucketAge.With(mm.name, bs.sig).Set(bs.oldestAge.Seconds())
		mm.sm.bucketFill.With(mm.name, bs.sig).Set(bs.fill)
	}
	mm.sm.bucketCount.With(mm.name).Set(float64(len(st.buckets)))
	mm.mu.Lock()
	prev := mm.seenBuckets
	mm.seenBuckets = current
	mm.mu.Unlock()
	for sig := range prev {
		if !current[sig] {
			mm.sm.bucketDepth.Delete(mm.name, sig)
			mm.sm.bucketAge.Delete(mm.name, sig)
			mm.sm.bucketFill.Delete(mm.name, sig)
		}
	}
}

// onLoad records one engine load (lifecycle counter + residency gauge).
func (mm *modelMetrics) onLoad(bytes int64) {
	mm.loads.Inc()
	mm.residentBytes.Set(float64(bytes))
}

// onKernelPanic records one contained kernel panic.
func (mm *modelMetrics) onKernelPanic() { mm.kernelPanics.Inc() }

// onQuarantineChange keeps the quarantine gauge current; entering a
// quarantine also bumps the episode counter.
func (mm *modelMetrics) onQuarantineChange(quarantined bool) {
	if quarantined {
		mm.quarantined.Set(1)
	} else {
		mm.quarantined.Set(0)
	}
}

// onQuarantine records the start of one quarantine episode.
func (mm *modelMetrics) onQuarantine() { mm.quarantines.Inc() }

// onEvict records one budget eviction.
func (mm *modelMetrics) onEvict(freed int64) {
	mm.evictions.Inc()
	mm.residentBytes.Set(0)
}

// refresh pulls scrape-time gauges from the admission controller.
func (mm *modelMetrics) refresh(ctrl *admission.Controller) {
	if ctrl == nil {
		return
	}
	st := ctrl.Stats()
	mm.queueDepth.Set(float64(st.Queued))
	mm.inflight.Set(float64(st.InFlight))
	if st.Degraded {
		mm.degraded.Set(1)
	} else {
		mm.degraded.Set(0)
	}
}
