package serve

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzDecodeInferRequest: arbitrary request bodies — including malformed
// INT8 wire tensors (fractional data, out-of-range values, bad scales,
// shape/data mismatches) — must either decode cleanly or fail with
// ErrBadRequest; they must never panic the serving tier.
func FuzzDecodeInferRequest(f *testing.F) {
	seed := func(v any) {
		b, err := json.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(InferRequest{Inputs: []InferTensor{
		{Name: "data", Shape: []int{1, 2}, Datatype: DatatypeFP32, Data: []float32{1, 2}}}})
	seed(InferRequest{Inputs: []InferTensor{
		{Name: "data", Shape: []int{2, 2}, Datatype: DatatypeINT8, Data: []float32{-127, 0, 1, 127}, Scale: 0.5}}})
	seed(InferRequest{Inputs: []InferTensor{
		{Name: "bad", Shape: []int{1}, Datatype: DatatypeINT8, Data: []float32{3.5}}}})
	seed(InferRequest{Inputs: []InferTensor{
		{Name: "bad", Shape: []int{1}, Datatype: DatatypeINT8, Data: []float32{200}}}})
	seed(InferRequest{Inputs: []InferTensor{
		{Name: "bad", Shape: []int{1, -1}, Datatype: DatatypeINT8, Data: []float32{1}}}})
	f.Add([]byte(`{"inputs":[{"name":"x","shape":[1],"datatype":"INT8","data":[1],"scale":-3}]}`))
	f.Add([]byte(`{"inputs":[{"name":"x","shape":[1,1000000,1000000],"datatype":"FP32","data":[]}]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, body []byte) {
		var req InferRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return
		}
		inputs, err := req.DecodeInputs()
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("decode error %v does not wrap ErrBadRequest", err)
			}
			return
		}
		// A successful decode must have produced a valid fp32 tensor per
		// declared input.
		for name, tt := range inputs {
			if tt == nil {
				t.Fatalf("input %q decoded to nil tensor", name)
			}
			if got := len(tt.Data()); got != tt.NumElements() {
				t.Fatalf("input %q: buffer %d != %d elements", name, got, tt.NumElements())
			}
		}
	})
}

// TestDecodeInt8WireTensor pins the INT8 wire contract directly.
func TestDecodeInt8WireTensor(t *testing.T) {
	ok := InferTensor{Name: "x", Shape: []int{2, 2}, Datatype: DatatypeINT8,
		Data: []float32{-127, 0, 64, 127}, Scale: 0.25}
	tt, err := ok.DecodeTensor()
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{-31.75, 0, 16, 31.75}
	for i, v := range want {
		if tt.Data()[i] != v {
			t.Fatalf("element %d: got %v want %v", i, tt.Data()[i], v)
		}
	}
	// Omitted scale means 1.
	noScale := InferTensor{Name: "x", Shape: []int{1}, Datatype: DatatypeINT8, Data: []float32{-5}}
	tt, err = noScale.DecodeTensor()
	if err != nil {
		t.Fatal(err)
	}
	if tt.Data()[0] != -5 {
		t.Fatalf("scale-1 decode got %v", tt.Data()[0])
	}
	for _, bad := range []InferTensor{
		{Name: "x", Shape: []int{1}, Datatype: DatatypeINT8, Data: []float32{0.5}},
		{Name: "x", Shape: []int{1}, Datatype: DatatypeINT8, Data: []float32{-128}},
		{Name: "x", Shape: []int{1}, Datatype: DatatypeINT8, Data: []float32{128}},
		{Name: "x", Shape: []int{1}, Datatype: DatatypeINT8, Data: []float32{1}, Scale: -1},
		{Name: "x", Shape: []int{1}, Datatype: "INT4", Data: []float32{1}},
	} {
		if _, err := bad.DecodeTensor(); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("tensor %+v: want ErrBadRequest, got %v", bad, err)
		}
	}
}
