// Package serve turns the in-process Engine API into a network serving
// tier: a Registry of named models (each an independently configured
// mnn.Engine with hot load/unload), a per-model dynamic micro-batcher that
// coalesces concurrent single requests into one batched run, and an HTTP
// server speaking a KServe-V2-inspired JSON inference protocol.
//
// The protocol mirrors the KServe "Open Inference Protocol" (v2) routes:
//
//	GET  /v2                                  server metadata
//	GET  /v2/health/live                      liveness
//	GET  /v2/health/ready                     readiness
//	GET  /v2/models                           list loaded models
//	GET  /v2/models/{name}                    model metadata
//	GET  /v2/models/{name}/ready              per-model readiness
//	POST /v2/models/{name}/infer              run inference
//	POST   /v2/repository/models/{name}/load    hot-load a model
//	POST   /v2/repository/models/{name}/unload  hot-unload a model
//	DELETE /v2/repository/models/{name}         alias for unload
//	GET  /metrics                             Prometheus text exposition
//
// Tensors travel as named JSON objects with an explicit shape and a flat
// float32 data array ("FP32"), matching how Engine.Infer consumes and
// produces dense NCHW tensors.
//
// Models loaded with an admission queue gain SLO-aware load shedding:
// requests that cannot meet their deadline (X-Request-Timeout /
// X-Request-Deadline headers, or the model's configured SLO) are rejected
// with HTTP 429 and a Retry-After header instead of timing out late, and
// X-Request-Priority ("high", "normal", "batch") picks the queueing class.
package serve

import (
	"errors"
	"fmt"
	"math"

	"mnn"
	"mnn/internal/tensor"
)

// DatatypeFP32 is the engine's native wire datatype: responses are always
// FP32, requests usually are.
const DatatypeFP32 = "FP32"

// DatatypeINT8 is the quantized request datatype: data carries integer
// values in [-127, 127] and the optional "scale" field dequantizes them
// (real = value·scale, scale 1 when omitted). The engine computes on the
// dequantized fp32 tensor — per-model int8 execution is selected at load
// time with the "precision" option, not per request.
const DatatypeINT8 = "INT8"

// Sentinel errors of the serving tier. Wrap-aware: test with errors.Is.
var (
	// ErrModelNotFound is returned by Registry lookups and mapped to HTTP
	// 404 by the server.
	ErrModelNotFound = errors.New("serve: model not found")

	// ErrBadRequest marks a malformed protocol body (bad tensor encoding,
	// unknown datatype, shape/data disagreement) and maps to HTTP 400.
	ErrBadRequest = errors.New("serve: bad request")

	// ErrServerClosed is returned by Server.Serve after Shutdown.
	ErrServerClosed = errors.New("serve: server closed")

	// ErrModelQuarantined marks a model taken out of rotation after
	// repeated kernel panics; it maps to HTTP 503 with an
	// X-Model-Quarantined header so the mesh router routes around the
	// replica instead of retrying into the same fault.
	ErrModelQuarantined = errors.New("serve: model quarantined")
)

// TensorMetadata describes one model input or output in metadata responses.
type TensorMetadata struct {
	Name     string `json:"name"`
	Datatype string `json:"datatype"`
	Shape    []int  `json:"shape"`
}

// ModelMetadata is the GET /v2/models/{name} response body.
type ModelMetadata struct {
	Name string `json:"name"`
	// Version is the registry version this metadata describes (model
	// references are "name[:version]"; bare names resolve the default
	// version).
	Version  string `json:"version,omitempty"`
	Platform string `json:"platform"`
	// Precision is the execution precision the model was loaded with
	// ("fp32" or "int8"); the wire tensors stay FP32 either way.
	Precision string           `json:"precision,omitempty"`
	Inputs    []TensorMetadata `json:"inputs"`
	Outputs   []TensorMetadata `json:"outputs,omitempty"`
}

// ServerMetadata is the GET /v2 response body.
type ServerMetadata struct {
	Name       string   `json:"name"`
	Version    string   `json:"version"`
	Extensions []string `json:"extensions"`
}

// ModelList is the GET /v2/models response body.
type ModelList struct {
	// Models lists the loaded model names (version-less, back-compatible).
	Models []string `json:"models"`
	// Refs lists every loaded "name:version" reference.
	Refs []string `json:"refs,omitempty"`
}

// InferTensor is one named tensor on the wire: an explicit shape plus the
// flat data in NCHW (row-major) order. FP32 tensors use Data as-is; INT8
// tensors carry quantized integers in Data with an optional Scale.
type InferTensor struct {
	Name     string    `json:"name"`
	Shape    []int     `json:"shape"`
	Datatype string    `json:"datatype"`
	Data     []float32 `json:"data"`
	// Scale dequantizes INT8 data (real = value·scale); 0/omitted means 1.
	Scale float32 `json:"scale,omitempty"`
}

// InferRequest is the POST /v2/models/{name}/infer request body.
type InferRequest struct {
	ID     string        `json:"id,omitempty"`
	Inputs []InferTensor `json:"inputs"`
	// Outputs optionally restricts which model outputs are returned.
	Outputs []RequestedOutput `json:"outputs,omitempty"`
}

// RequestedOutput names one output the client wants back.
type RequestedOutput struct {
	Name string `json:"name"`
}

// InferResponse is the POST /v2/models/{name}/infer response body.
type InferResponse struct {
	ModelName string        `json:"model_name"`
	ID        string        `json:"id,omitempty"`
	// Precision is the execution precision that actually served this
	// request; it differs from the model's loaded precision ("int8" vs
	// "fp32") exactly when the request was served by the degrade engine
	// under overload.
	Precision string        `json:"precision,omitempty"`
	Outputs   []InferTensor `json:"outputs"`
}

// ErrorResponse is the JSON body of every non-2xx protocol response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// EncodeTensor converts an engine tensor into its wire form, copying the
// logical contents out in NCHW order.
func EncodeTensor(name string, t *mnn.Tensor) InferTensor {
	nchw := t.ToLayout(tensor.NCHW)
	data := make([]float32, nchw.NumElements())
	copy(data, nchw.Data())
	return InferTensor{
		Name:     name,
		Shape:    append([]int(nil), t.Shape()...),
		Datatype: DatatypeFP32,
		Data:     data,
	}
}

// DecodeTensor validates a wire tensor and converts it into an engine
// tensor. The returned tensor owns its own buffer. Every failure wraps
// ErrBadRequest.
func (it InferTensor) DecodeTensor() (*mnn.Tensor, error) {
	if it.Name == "" {
		return nil, fmt.Errorf("%w: tensor with empty name", ErrBadRequest)
	}
	if it.Datatype != DatatypeFP32 && it.Datatype != DatatypeINT8 {
		return nil, fmt.Errorf("%w: tensor %q has datatype %q (want %s or %s)",
			ErrBadRequest, it.Name, it.Datatype, DatatypeFP32, DatatypeINT8)
	}
	if len(it.Shape) == 0 {
		return nil, fmt.Errorf("%w: tensor %q has no shape", ErrBadRequest, it.Name)
	}
	n := 1
	for _, d := range it.Shape {
		if d <= 0 {
			return nil, fmt.Errorf("%w: tensor %q has non-positive dim in shape %v",
				ErrBadRequest, it.Name, it.Shape)
		}
		n *= d
	}
	if len(it.Data) != n {
		return nil, fmt.Errorf("%w: tensor %q shape %v wants %d elements, got %d",
			ErrBadRequest, it.Name, it.Shape, n, len(it.Data))
	}
	if it.Datatype == DatatypeINT8 {
		return it.decodeInt8(n)
	}
	data := append([]float32(nil), it.Data...)
	return tensor.FromData(data, it.Shape...), nil
}

// decodeInt8 validates a quantized wire tensor — every value an integer in
// the symmetric int8 range, a finite positive scale — and dequantizes it
// into the fp32 tensor the engine consumes. Every failure wraps
// ErrBadRequest; malformed payloads must never panic (the protocol fuzz
// suite pins this).
func (it InferTensor) decodeInt8(n int) (*mnn.Tensor, error) {
	scale := it.Scale
	if scale == 0 {
		scale = 1
	}
	if scale < 0 || math.IsNaN(float64(scale)) || math.IsInf(float64(scale), 0) {
		return nil, fmt.Errorf("%w: tensor %q has invalid int8 scale %v", ErrBadRequest, it.Name, it.Scale)
	}
	data := make([]float32, n)
	for i, v := range it.Data {
		if v != float32(int32(v)) || v < -127 || v > 127 {
			// Catches fractions, NaN, ±Inf and out-of-range values alike:
			// NaN fails the equality, ±Inf fails the range check.
			return nil, fmt.Errorf("%w: tensor %q datum %d (%v) is not an int8 value in [-127, 127]",
				ErrBadRequest, it.Name, i, v)
		}
		data[i] = v * scale
	}
	return tensor.FromData(data, it.Shape...), nil
}

// DecodeInputs converts a request's input list into the map Engine.Infer
// consumes, rejecting duplicates and empty input lists.
func (r *InferRequest) DecodeInputs() (map[string]*mnn.Tensor, error) {
	if len(r.Inputs) == 0 {
		return nil, fmt.Errorf("%w: request has no inputs", ErrBadRequest)
	}
	inputs := make(map[string]*mnn.Tensor, len(r.Inputs))
	for _, it := range r.Inputs {
		t, err := it.DecodeTensor()
		if err != nil {
			return nil, err
		}
		if _, dup := inputs[it.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate input tensor %q", ErrBadRequest, it.Name)
		}
		inputs[it.Name] = t
	}
	return inputs, nil
}

// EncodeOutputs converts an Engine.Infer result into a response body,
// honouring the request's optional output selection. Outputs are emitted in
// the engine's declared order for deterministic bodies.
func (r *InferRequest) EncodeOutputs(modelName string, order []string, outputs map[string]*mnn.Tensor) (*InferResponse, error) {
	want := order
	if len(r.Outputs) > 0 {
		want = make([]string, len(r.Outputs))
		for i, o := range r.Outputs {
			want[i] = o.Name
		}
	}
	resp := &InferResponse{ModelName: modelName, ID: r.ID, Outputs: make([]InferTensor, 0, len(want))}
	for _, name := range want {
		t, ok := outputs[name]
		if !ok {
			return nil, fmt.Errorf("%w: unknown output %q (model outputs: %v)", ErrBadRequest, name, order)
		}
		resp.Outputs = append(resp.Outputs, EncodeTensor(name, t))
	}
	return resp, nil
}
