package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// hold acquires a ticket on the fast path and returns it, failing the test
// if the acquire blocks or sheds.
func hold(t *testing.T, c *Controller, pri Priority) *Ticket {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	tk, err := c.Acquire(ctx, pri)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	return tk
}

func TestFastPathAndRelease(t *testing.T) {
	c := New(Config{Name: "m", Depth: 4, Concurrency: 2})
	t1 := hold(t, c, Normal)
	t2 := hold(t, c, Normal)
	st := c.Stats()
	if st.InFlight != 2 || st.Queued != 0 || st.Admitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
	t1.Release()
	t1.Release() // idempotent
	t2.Release()
	st = c.Stats()
	if st.InFlight != 0 {
		t.Fatalf("inflight after release = %d", st.InFlight)
	}
	if st.ServiceEWMA <= 0 {
		t.Fatalf("service EWMA not fed: %+v", st)
	}
}

func TestQueueFullSheds(t *testing.T) {
	c := New(Config{Name: "m", Depth: 2, Concurrency: 1})
	tk := hold(t, c, Normal) // occupies the only slot
	// Fill the queue with two waiters.
	var wg sync.WaitGroup
	results := make([]error, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t2, err := c.Acquire(context.Background(), Normal)
			results[i] = err
			if err == nil {
				t2.Release()
			}
		}(i)
	}
	// Wait until both are queued.
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Queued != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never queued: %+v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	// The queue is full: the next request sheds immediately with a typed
	// overload error naming the model.
	_, err := c.Acquire(context.Background(), Normal)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue: %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ReasonQueueFull || oe.Name != "m" || oe.RetryAfter <= 0 {
		t.Fatalf("overload error = %+v", oe)
	}
	tk.Release()
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("queued request %d: %v", i, err)
		}
	}
	st := c.Stats()
	if st.ShedQueueFull != 1 || st.Admitted != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeadlineShedsEarly(t *testing.T) {
	c := New(Config{Name: "m", Depth: 8, Concurrency: 1})
	// Feed the service EWMA: one request that "took" ~20ms.
	tk := hold(t, c, Normal)
	time.Sleep(20 * time.Millisecond)
	tk.Release()

	// A request whose deadline is far tighter than one service time is
	// rejected immediately, even though the queue is empty.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := c.Acquire(ctx, High)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ReasonDeadline {
		t.Fatalf("tight deadline: %v, want deadline shed", err)
	}
	// A request with plenty of budget is admitted.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	tk, err = c.Acquire(ctx2, Normal)
	if err != nil {
		t.Fatalf("roomy deadline: %v", err)
	}
	tk.Release()
}

func TestSLOSheds(t *testing.T) {
	c := New(Config{Name: "m", Depth: 8, Concurrency: 1, SLO: time.Millisecond})
	tk := hold(t, c, Normal)
	time.Sleep(20 * time.Millisecond)
	tk.Release()
	// No ctx deadline at all — the model SLO alone sheds.
	_, err := c.Acquire(context.Background(), Normal)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ReasonDeadline {
		t.Fatalf("SLO shed: %v", err)
	}
}

func TestCancelWhileQueued(t *testing.T) {
	c := New(Config{Name: "m", Depth: 4, Concurrency: 1})
	tk := hold(t, c, Normal)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, Normal)
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v", err)
	}
	st := c.Stats()
	if st.Queued != 0 || st.Canceled != 1 {
		t.Fatalf("stats after cancel = %+v", st)
	}
	tk.Release()
	if st := c.Stats(); st.InFlight != 0 {
		t.Fatalf("inflight = %d after release", st.InFlight)
	}
}

// TestPriorityOrdering checks that with one slot and a backlog of one high,
// one normal and several batch requests, the high request is granted first
// and batch traffic still gets through (no starvation).
func TestPriorityOrdering(t *testing.T) {
	c := New(Config{Name: "m", Depth: 16, Concurrency: 1})
	gate := hold(t, c, Normal)

	var mu sync.Mutex
	var order []Priority
	var wg sync.WaitGroup
	// Deterministic arrival: batch, batch, normal, high — one at a time.
	pris := []Priority{Batch, Batch, Normal, High}
	for i, p := range pris {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := c.Acquire(context.Background(), p)
			if err != nil {
				t.Errorf("acquire %v: %v", p, err)
				return
			}
			mu.Lock()
			order = append(order, p)
			mu.Unlock()
			// Hold briefly so dispatches are strictly sequential.
			time.Sleep(2 * time.Millisecond)
			tk.Release()
		}()
		deadline := time.Now().Add(2 * time.Second)
		for c.Stats().Queued != i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("request %d (%v) never queued", i, p)
			}
			time.Sleep(time.Millisecond)
		}
	}
	gate.Release()
	wg.Wait()
	if len(order) != 4 {
		t.Fatalf("served %d requests, want 4", len(order))
	}
	if order[0] != High {
		t.Fatalf("first served = %v, want high (order %v)", order[0], order)
	}
	served := map[Priority]int{}
	for _, p := range order {
		served[p]++
	}
	if served[Batch] != 2 || served[Normal] != 1 {
		t.Fatalf("batch traffic starved: order %v", order)
	}
}

func TestDegradeHysteresis(t *testing.T) {
	var mu sync.Mutex
	var calls []bool
	c := New(Config{
		Name: "m", Depth: 1, Concurrency: 1, DegradeThreshold: 0.3,
		OnDegrade: func(d bool) { mu.Lock(); calls = append(calls, d); mu.Unlock() },
	})
	// Saturate: hold the slot and a queue entry, then shed repeatedly.
	tk := hold(t, c, Normal)
	blocked := make(chan struct{})
	go func() {
		t2, err := c.Acquire(context.Background(), Normal)
		if err == nil {
			t2.Release()
		}
		close(blocked)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("filler never queued")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 20 && !c.Degraded(); i++ {
		if _, err := c.Acquire(context.Background(), Normal); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("expected shed, got %v", err)
		}
	}
	if !c.Degraded() {
		t.Fatalf("not degraded after sustained shedding: %+v", c.Stats())
	}
	tk.Release()
	<-blocked
	// Pressure clears: repeated successful admissions decay the EWMA below
	// threshold/2 and the signal drops.
	for i := 0; i < 100 && c.Degraded(); i++ {
		tk, err := c.Acquire(context.Background(), Normal)
		if err != nil {
			t.Fatalf("admit during recovery: %v", err)
		}
		tk.Release()
	}
	if c.Degraded() {
		t.Fatalf("still degraded after recovery: %+v", c.Stats())
	}
	st := c.Stats()
	if st.DegradeTransitions != 2 {
		t.Fatalf("transitions = %d, want 2", st.DegradeTransitions)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 2 || calls[0] != true || calls[1] != false {
		t.Fatalf("OnDegrade calls = %v, want [true false]", calls)
	}
}

func TestClose(t *testing.T) {
	c := New(Config{Name: "m", Depth: 4, Concurrency: 1})
	tk := hold(t, c, Normal)
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(context.Background(), Normal)
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("queued waiter after Close: %v, want ErrClosed", err)
	}
	if _, err := c.Acquire(context.Background(), Normal); !errors.Is(err, ErrClosed) {
		t.Fatalf("Acquire after Close: %v, want ErrClosed", err)
	}
	tk.Release() // still safe
}

func TestParsePriority(t *testing.T) {
	for s, want := range map[string]Priority{
		"": Normal, "normal": Normal, "high": High, "batch": Batch, "low": Batch,
	} {
		got, err := ParsePriority(s)
		if err != nil || got != want {
			t.Errorf("ParsePriority(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParsePriority("urgent"); err == nil {
		t.Error("ParsePriority(urgent) did not error")
	}
	if High.String() != "high" || Normal.String() != "normal" || Batch.String() != "batch" {
		t.Error("Priority.String round-trip broken")
	}
}

// TestConcurrentChurn hammers the controller from many goroutines under the
// race detector: mixed priorities, cancellations and sheds must keep the
// accounting consistent (no negative occupancy, inflight drains to zero).
func TestConcurrentChurn(t *testing.T) {
	c := New(Config{Name: "m", Depth: 8, Concurrency: 4, DegradeThreshold: 0.5})
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
				tk, err := c.Acquire(ctx, Priority(w%3))
				if err == nil {
					time.Sleep(50 * time.Microsecond)
					tk.Release()
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("leaked occupancy: %+v", st)
	}
	if st.Admitted == 0 {
		t.Fatalf("nothing admitted: %+v", st)
	}
}

// TestEffectiveDeadline: the batched-run deadline is the tighter of the
// caller's context deadline and arrival+SLO, and absent entirely when
// neither is set.
func TestEffectiveDeadline(t *testing.T) {
	arrival := time.Now()
	if _, ok := EffectiveDeadline(context.Background(), arrival, 0); ok {
		t.Fatal("deadline reported with no ctx deadline and no SLO")
	}
	if d, ok := EffectiveDeadline(nil, arrival, 50*time.Millisecond); !ok || !d.Equal(arrival.Add(50*time.Millisecond)) {
		t.Fatalf("SLO-only: got %v ok=%v", d, ok)
	}
	ctxDL := arrival.Add(20 * time.Millisecond)
	ctx, cancel := context.WithDeadline(context.Background(), ctxDL)
	defer cancel()
	if d, ok := EffectiveDeadline(ctx, arrival, 0); !ok || !d.Equal(ctxDL) {
		t.Fatalf("ctx-only: got %v ok=%v, want %v", d, ok, ctxDL)
	}
	// Both set: the earlier one wins, whichever that is.
	if d, ok := EffectiveDeadline(ctx, arrival, 50*time.Millisecond); !ok || !d.Equal(ctxDL) {
		t.Fatalf("ctx tighter: got %v ok=%v, want %v", d, ok, ctxDL)
	}
	if d, ok := EffectiveDeadline(ctx, arrival, 5*time.Millisecond); !ok || !d.Equal(arrival.Add(5*time.Millisecond)) {
		t.Fatalf("SLO tighter: got %v ok=%v", d, ok)
	}
}
