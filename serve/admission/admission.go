// Package admission implements SLO-aware admission control for the serving
// tier: a bounded request queue with priority classes in front of each
// engine, deadline-aware load shedding, and a graceful-degradation signal.
//
// The design follows the "reject early beats timeout late" principle from
// production inference servers (kserve's queue-proxy, MLPerf server
// scenarios): a request that cannot meet its deadline given the current
// backlog is rejected immediately with ErrOverloaded (HTTP 429 upstream), so
// the client can retry against another replica instead of burning its whole
// budget waiting for a response that will arrive too late.
//
// Request flow:
//
//	tk, err := ctrl.Acquire(ctx, admission.Normal)  // may shed or queue
//	if err != nil { ... 429 ... }
//	out, err := engine.Infer(ctx, in)               // bounded concurrency
//	tk.Release()                                    // feeds the EWMAs, grants next
//
// Three priority classes (High, Normal, Batch) are dequeued by smooth
// weighted round-robin (weights 8/4/1), so high-priority traffic mostly wins
// without ever starving batch traffic.
//
// The controller additionally tracks a shed-rate EWMA. Under sustained
// overload (EWMA above Config.DegradeThreshold) it raises the Degraded
// signal; the serving tier uses it to route traffic to a cheaper engine
// (e.g. the model's int8 path) until pressure clears (EWMA below half the
// threshold — hysteresis so the route doesn't flap).
package admission

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// Priority classes. The zero value is Normal, so an unset config or wire
// field defaults to the middle class; use ParsePriority for wire input.
type Priority int

const (
	// Normal is the default class.
	Normal Priority = iota
	// High is latency-sensitive interactive traffic (highest weight).
	High
	// Batch is throughput traffic that tolerates queueing (lowest weight).
	Batch
	numPriorities
)

// wrrWeights are the smooth-WRR dequeue weights per class.
var wrrWeights = [numPriorities]float64{Normal: 4, High: 8, Batch: 1}

// String returns the wire name of the class.
func (p Priority) String() string {
	switch p {
	case High:
		return "high"
	case Normal:
		return "normal"
	case Batch:
		return "batch"
	}
	return fmt.Sprintf("Priority(%d)", int(p))
}

// ParsePriority maps a class name (case-sensitive on purpose: the wire
// protocol is lowercase) to its Priority. The empty string is Normal.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "normal":
		return Normal, nil
	case "high":
		return High, nil
	case "batch", "low":
		return Batch, nil
	}
	return Normal, fmt.Errorf("admission: unknown priority %q (want high, normal or batch)", s)
}

// ErrOverloaded is the sentinel every shed wraps; the serving tier maps it
// to HTTP 429. Test with errors.Is.
var ErrOverloaded = errors.New("admission: overloaded")

// ErrClosed is returned by Acquire after Close.
var ErrClosed = errors.New("admission: controller closed")

// OverloadError carries the shed details: why the request was rejected and
// how long the client should back off (the Retry-After header upstream).
type OverloadError struct {
	// Name is the model the controller fronts.
	Name string
	// Reason is "queue_full" or "deadline" (metrics label values).
	Reason string
	// RetryAfter estimates when capacity will be available again.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("admission: %s overloaded (%s): retry after %v", e.Name, e.Reason, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) true.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// Shed reasons (also used as metric label values).
const (
	ReasonQueueFull = "queue_full"
	ReasonDeadline  = "deadline"
)

// EWMA smoothing factors. Service time adapts quickly (per completion);
// the shed rate is smoothed per admission decision — at 0.1 roughly the
// last ~20 decisions dominate, which is what "sustained overload" means
// at serving request rates.
const (
	serviceAlpha  = 0.2
	shedRateAlpha = 0.1
)

// Config parameterizes a Controller.
type Config struct {
	// Name labels errors and stats (typically the registry model name).
	Name string
	// Depth bounds how many admitted requests may wait for an execution
	// slot. <= 0 means 1.
	Depth int
	// Concurrency bounds how many admitted requests execute at once
	// (typically the engine pool size, or the micro-batch size when
	// batching). <= 0 means 1.
	Concurrency int
	// SLO is the per-model latency budget measured from arrival. When set,
	// a request is shed on arrival if the queue-wait estimate says it
	// cannot finish inside min(SLO, ctx deadline); when zero only explicit
	// ctx deadlines shed.
	SLO time.Duration
	// DegradeThreshold is the shed-rate EWMA above which Degraded() turns
	// on (and below half of which it turns back off). <= 0 disables the
	// degrade signal.
	DegradeThreshold float64
	// OnDegrade, when set, is called (outside the controller lock) after
	// every Degraded transition with the new state.
	OnDegrade func(degraded bool)
}

// Stats is a point-in-time snapshot of the controller.
type Stats struct {
	Queued      int // requests waiting for an execution slot
	Depth       int // queue capacity
	InFlight    int // requests currently executing
	Concurrency int // execution slots

	Admitted      uint64 // requests granted an execution slot (incl. fast path)
	ShedQueueFull uint64
	ShedDeadline  uint64
	Canceled      uint64 // gave up (ctx done) while queued

	ShedRateEWMA       float64
	ServiceEWMA        time.Duration // smoothed per-request service time
	Degraded           bool
	DegradeTransitions uint64
}

// Shed is the total over all shed reasons.
func (s Stats) Shed() uint64 { return s.ShedQueueFull + s.ShedDeadline }

// waiter is one queued request.
type waiter struct {
	grant chan struct{} // closed on grant or rejection
	err   error         // set before grant is closed when rejected
	pos   int           // index in its class queue, kept current for removal
	pri   Priority
}

// Controller is the admission gate in front of one model. Safe for
// concurrent use.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	queues   [numPriorities][]*waiter
	queued   int
	inflight int
	wrrCur   [numPriorities]float64
	svcEWMA  float64 // seconds; 0 until the first completion
	shedEWMA float64
	degraded bool
	closed   bool
	// lastDelivered is the degrade state last handed to OnDegrade
	// (false at start), so transitions are delivered exactly once.
	lastDelivered bool

	admitted      uint64
	shedQueueFull uint64
	shedDeadline  uint64
	canceled      uint64
	transitions   uint64
}

// New builds a controller; zero/negative Depth and Concurrency become 1.
func New(cfg Config) *Controller {
	if cfg.Depth <= 0 {
		cfg.Depth = 1
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	return &Controller{cfg: cfg}
}

// Ticket is a granted execution slot. Release must be called exactly once
// when the request finishes (success or failure).
type Ticket struct {
	c        *Controller
	granted  time.Time
	wait     time.Duration
	released bool
}

// QueueWait is how long the request waited for its slot.
func (t *Ticket) QueueWait() time.Duration { return t.wait }

// EffectiveDeadline is the admission tier's deadline rule, shared with the
// serve tier's micro-batcher: the earlier of the caller's context deadline
// and the SLO budget measured from arrival. ok is false when neither
// bounds the request. A nil ctx means no client deadline.
func EffectiveDeadline(ctx context.Context, arrival time.Time, slo time.Duration) (deadline time.Time, ok bool) {
	if ctx != nil {
		if d, has := ctx.Deadline(); has {
			deadline, ok = d, true
		}
	}
	if slo > 0 {
		if sd := arrival.Add(slo); !ok || sd.Before(deadline) {
			deadline, ok = sd, true
		}
	}
	return deadline, ok
}

// Acquire admits, queues, or sheds one request. It blocks until an
// execution slot is granted, the request is shed, ctx is done, or the
// controller closes. The deadline check runs before the ctx liveness check
// so an already-hopeless request is rejected as overload (429, retryable
// against another replica) rather than reported as a client cancellation.
func (c *Controller) Acquire(ctx context.Context, pri Priority) (*Ticket, error) {
	if pri < 0 || pri >= numPriorities {
		pri = Normal
	}
	now := time.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}

	deadline, hasDeadline := EffectiveDeadline(ctx, now, c.cfg.SLO)

	// Reject-early: with a service-time estimate, a request whose expected
	// completion (queue drain + own service) misses the deadline is shed
	// now instead of timing out late. Before the first completion there is
	// no estimate and only the queue bound sheds.
	if hasDeadline && c.svcEWMA > 0 {
		est := c.waitEstimateLocked()
		if now.Add(est + time.Duration(c.svcEWMA*float64(time.Second))).After(deadline) {
			c.shedDeadline++
			err := c.shedLocked(ReasonDeadline, est)
			cb := c.degradeCallbackLocked()
			c.mu.Unlock()
			cb()
			return nil, err
		}
	}

	// Fast path: an idle slot and an empty queue.
	if c.inflight < c.cfg.Concurrency && c.queued == 0 {
		c.inflight++
		c.admitted++
		c.noteAdmitLocked()
		cb := c.degradeCallbackLocked()
		c.mu.Unlock()
		cb()
		return &Ticket{c: c, granted: now}, nil
	}

	// Bounded queue: full means shed.
	if c.queued >= c.cfg.Depth {
		c.shedQueueFull++
		err := c.shedLocked(ReasonQueueFull, c.waitEstimateLocked())
		cb := c.degradeCallbackLocked()
		c.mu.Unlock()
		cb()
		return nil, err
	}

	w := &waiter{grant: make(chan struct{}), pri: pri, pos: len(c.queues[pri])}
	c.queues[pri] = append(c.queues[pri], w)
	c.queued++
	c.noteAdmitLocked()
	cb := c.degradeCallbackLocked()
	c.mu.Unlock()
	cb()

	select {
	case <-w.grant:
		if w.err != nil {
			return nil, w.err
		}
		granted := time.Now()
		return &Ticket{c: c, granted: granted, wait: granted.Sub(now)}, nil
	case <-ctx.Done():
		c.mu.Lock()
		select {
		case <-w.grant:
			// Granted while we were giving up: hand the slot back without
			// feeding the service-time EWMA (nothing executed).
			if w.err == nil {
				c.inflight--
				c.dispatchLocked()
			}
		default:
			c.removeLocked(w)
			c.canceled++
		}
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Release returns the execution slot, feeds the service-time EWMA with the
// observed execution duration, and grants the next queued request.
func (t *Ticket) Release() {
	if t.released {
		return
	}
	t.released = true
	c := t.c
	dur := time.Since(t.granted).Seconds()
	c.mu.Lock()
	if c.svcEWMA == 0 {
		c.svcEWMA = dur
	} else {
		c.svcEWMA += serviceAlpha * (dur - c.svcEWMA)
	}
	c.inflight--
	c.dispatchLocked()
	c.mu.Unlock()
}

// waitEstimateLocked estimates how long a newly arriving request would wait
// for a slot: the backlog ahead of it, drained Concurrency-wide at the
// smoothed service time.
func (c *Controller) waitEstimateLocked() time.Duration {
	if c.svcEWMA == 0 {
		return 0
	}
	backlog := float64(c.queued+c.inflight) - float64(c.cfg.Concurrency-1)
	if backlog < 0 {
		backlog = 0
	}
	sec := backlog * c.svcEWMA / float64(c.cfg.Concurrency)
	return time.Duration(sec * float64(time.Second))
}

// shedLocked records one shed decision and builds the typed error.
func (c *Controller) shedLocked(reason string, est time.Duration) error {
	c.shedEWMA += shedRateAlpha * (1 - c.shedEWMA)
	c.updateDegradedLocked()
	retry := est
	if retry <= 0 {
		if c.cfg.SLO > 0 {
			retry = c.cfg.SLO
		} else {
			retry = time.Second
		}
	}
	return &OverloadError{Name: c.cfg.Name, Reason: reason, RetryAfter: retry}
}

// noteAdmitLocked feeds the shed-rate EWMA with an admit decision.
func (c *Controller) noteAdmitLocked() {
	c.shedEWMA += shedRateAlpha * (0 - c.shedEWMA)
	c.updateDegradedLocked()
}

// updateDegradedLocked applies the hysteresis band to the shed-rate EWMA.
func (c *Controller) updateDegradedLocked() {
	th := c.cfg.DegradeThreshold
	if th <= 0 {
		return
	}
	switch {
	case !c.degraded && c.shedEWMA > th:
		c.degraded = true
		c.transitions++
	case c.degraded && c.shedEWMA < th/2:
		c.degraded = false
		c.transitions++
	}
}

// degradeCallbackLocked captures the OnDegrade call for the current state if
// a transition happened since the last delivery; the returned func runs
// outside the lock (OnDegrade may take its own locks).
func (c *Controller) degradeCallbackLocked() func() {
	if c.cfg.OnDegrade == nil || c.lastDelivered == c.degraded {
		return func() {}
	}
	c.lastDelivered = c.degraded
	state := c.degraded
	cb := c.cfg.OnDegrade
	return func() { cb(state) }
}

// dispatchLocked grants queued requests while slots are free, choosing the
// class by smooth weighted round-robin over the non-empty queues.
func (c *Controller) dispatchLocked() {
	for c.inflight < c.cfg.Concurrency && c.queued > 0 {
		var total float64
		best, bestCur := -1, math.Inf(-1)
		for p := 0; p < int(numPriorities); p++ {
			if len(c.queues[p]) == 0 {
				continue
			}
			total += wrrWeights[p]
			c.wrrCur[p] += wrrWeights[p]
			if c.wrrCur[p] > bestCur {
				best, bestCur = p, c.wrrCur[p]
			}
		}
		c.wrrCur[best] -= total
		w := c.queues[best][0]
		c.queues[best] = c.queues[best][1:]
		for i, q := range c.queues[best] {
			q.pos = i
		}
		c.queued--
		c.inflight++
		c.admitted++
		close(w.grant)
	}
}

// removeLocked drops a waiter that gave up (ctx done) from its queue.
func (c *Controller) removeLocked(w *waiter) {
	q := c.queues[w.pri]
	if w.pos >= len(q) || q[w.pos] != w {
		return // already dispatched or removed
	}
	c.queues[w.pri] = append(q[:w.pos], q[w.pos+1:]...)
	for i, r := range c.queues[w.pri] {
		r.pos = i
	}
	c.queued--
}

// Degraded reports the graceful-degradation signal.
func (c *Controller) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// Stats returns a snapshot of queue occupancy, counters and EWMAs.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Queued:      c.queued,
		Depth:       c.cfg.Depth,
		InFlight:    c.inflight,
		Concurrency: c.cfg.Concurrency,

		Admitted:      c.admitted,
		ShedQueueFull: c.shedQueueFull,
		ShedDeadline:  c.shedDeadline,
		Canceled:      c.canceled,

		ShedRateEWMA:       c.shedEWMA,
		ServiceEWMA:        time.Duration(c.svcEWMA * float64(time.Second)),
		Degraded:           c.degraded,
		DegradeTransitions: c.transitions,
	}
}

// Close rejects all queued waiters with ErrClosed and fails later Acquires.
// In-flight requests finish normally; their Release is still safe.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for p := range c.queues {
		for _, w := range c.queues[p] {
			w.err = ErrClosed
			close(w.grant)
		}
		c.queues[p] = nil
	}
	c.queued = 0
	c.mu.Unlock()
}
