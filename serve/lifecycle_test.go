package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mnn"
	"mnn/serve/admission"
)

// TestLazyBudgetEviction is the memory-budget acceptance test: a registry
// whose budget holds only one of three models still serves all three,
// resident bytes never exceed the budget between requests, and — because
// every model shares a persistent tuning cache — reloading an evicted model
// re-opens its engines without re-measuring a single kernel.
func TestLazyBudgetEviction(t *testing.T) {
	cache := t.TempDir() + "/tuning.json"
	opts := []mnn.Option{
		mnn.WithPoolSize(1), mnn.WithThreads(1),
		mnn.WithTuning(mnn.TuningMeasured), mnn.WithTuningCache(cache),
	}
	reg := NewRegistry()
	defer reg.Close()
	// Budget set before any Load: every load below is implicitly lazy.
	reg.SetMemoryBudget(1 << 30)
	g := tinyGraph(t)
	for _, name := range []string{"a", "b", "c"} {
		if err := reg.Load(name, ModelConfig{Model: g, Options: opts}); err != nil {
			t.Fatal(err)
		}
		m, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Loaded() {
			t.Fatalf("%s resident before first request — lazy load did not defer", name)
		}
	}

	ctx := context.Background()
	infer := func(name string, seed uint64) {
		t.Helper()
		m, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		out, err := m.Infer(ctx, map[string]*mnn.Tensor{"data": randomInput(seed, []int{1, 3, 16, 16})})
		if err != nil {
			t.Fatalf("infer %s: %v", name, err)
		}
		if len(out) == 0 {
			t.Fatalf("infer %s: no outputs", name)
		}
	}

	// First request warms model a (cold: kernels actually measured, cache
	// written) and tells us what one resident model costs.
	infer("a", 1)
	a, _ := reg.Get("a")
	cold := a.TuningStats()
	if cold.Measured == 0 || !cold.CacheSaved {
		t.Fatalf("cold load did not measure and persist tuning: %+v", cold)
	}
	perModel := a.ResidentBytes()
	if perModel <= 0 {
		t.Fatalf("resident model reports %d bytes", perModel)
	}
	if got := reg.ResidentBytes(); got != perModel {
		t.Fatalf("registry resident %d != model resident %d", got, perModel)
	}

	// Now shrink the budget so exactly one model fits.
	budget := perModel + perModel/2
	reg.SetMemoryBudget(budget)
	if got := reg.ResidentBytes(); got > budget {
		t.Fatalf("resident %d exceeds budget %d right after SetMemoryBudget", got, budget)
	}

	// Round-robin over a working set larger than the budget: every request
	// must be served, and between requests the accounting must respect the
	// budget.
	for round := 0; round < 2; round++ {
		for _, name := range []string{"a", "b", "c"} {
			infer(name, uint64(10+round))
			if got := reg.ResidentBytes(); got > budget {
				t.Fatalf("round %d after %s: resident %d exceeds budget %d", round, name, got, budget)
			}
		}
	}

	// c was the last model served; the earlier two must have been evicted
	// to make room (LRU), not still resident.
	resident := 0
	for _, name := range []string{"a", "b", "c"} {
		m, _ := reg.Get(name)
		if m.Loaded() {
			resident++
		}
	}
	c, _ := reg.Get("c")
	if !c.Loaded() || resident != 1 {
		t.Fatalf("want exactly the last-used model resident, got %d resident (c loaded: %v)", resident, c.Loaded())
	}

	// Reload of an evicted model must resolve every kernel from the warm
	// tuning cache: zero measurements, full cache hits.
	infer("a", 20)
	warm := a.TuningStats()
	if warm.Measured != 0 {
		t.Fatalf("reload after eviction re-measured %d kernels; the tuning cache should have made Open measurement-free (%+v)", warm.Measured, warm)
	}
	if warm.Unique == 0 || warm.CacheHits != warm.Unique {
		t.Fatalf("reload cache hits %d of %d signatures: %+v", warm.CacheHits, warm.Unique, warm)
	}

	// The lifecycle is observable: loads, evictions and resident bytes are
	// exported. a loaded twice (cold + reload), and at least two evictions
	// happened across the round-robin.
	base, shutdown := startServer(t, reg)
	defer shutdown(ctx)
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(blob)
	if got := metricSum(text, `mnn_model_loads_total{model="a:1"}`); got < 2 {
		t.Errorf("a:1 loads counter %v, want >= 2 (cold + reload)", got)
	}
	if got := metricSum(text, "mnn_model_evictions_total"); got < 2 {
		t.Errorf("evictions counter %v, want >= 2", got)
	}
	if got := metricSum(text, "mnn_memory_budget_bytes"); got != float64(budget) {
		t.Errorf("budget gauge %v, want %d", got, budget)
	}
	if got := metricSum(text, "mnn_resident_bytes"); got > float64(budget) {
		t.Errorf("resident gauge %v exceeds budget %d", got, budget)
	}
}

// metricSum sums values of series whose "name{labels}" prefix contains sub.
func metricSum(text, sub string) float64 {
	var total float64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "#") || !strings.Contains(line, sub) {
			continue
		}
		i := strings.LastIndex(line, " ")
		if i < 0 {
			continue
		}
		var f float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &f); err == nil {
			total += f
		}
	}
	return total
}

// TestLifecycleChurnRace hammers a registry with concurrent inference,
// unload/reload cycles, and direct evictions. The invariant is not that
// every request succeeds — a request can legitimately land on a model
// mid-unload — but that every failure is one of the documented lifecycle
// errors and nothing panics, deadlocks, or races (run under -race).
func TestLifecycleChurnRace(t *testing.T) {
	g := tinyGraph(t)
	opts := []mnn.Option{mnn.WithPoolSize(1), mnn.WithThreads(1)}
	cfg := ModelConfig{Model: g, Options: opts, Lazy: true}
	reg := NewRegistry()
	defer reg.Close()
	for _, name := range []string{"a", "b"} {
		if err := reg.Load(name, cfg); err != nil {
			t.Fatal(err)
		}
	}

	allowed := func(err error) bool {
		return errors.Is(err, ErrModelNotFound) ||
			errors.Is(err, ErrServerClosed) ||
			errors.Is(err, mnn.ErrEngineClosed) ||
			errors.Is(err, mnn.ErrCancelled)
	}

	ctx := context.Background()
	var done atomic.Bool
	var workers, evictor sync.WaitGroup
	// Inference workers: loop over both models, tolerate lifecycle errors
	// only.
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			in := map[string]*mnn.Tensor{"data": randomInput(uint64(w), []int{1, 3, 16, 16})}
			for i := 0; i < 200; i++ {
				name := "a"
				if (w+i)%2 == 0 {
					name = "b"
				}
				m, err := reg.Get(name)
				if err != nil {
					if !allowed(err) {
						t.Errorf("Get(%s): unexpected %v", name, err)
					}
					continue
				}
				if _, err := m.Infer(ctx, in); err != nil && !allowed(err) {
					t.Errorf("Infer(%s): unexpected %v", name, err)
				}
			}
		}(w)
	}
	// Churner: unload/reload model a continuously.
	workers.Add(1)
	go func() {
		defer workers.Done()
		for i := 0; i < 60; i++ {
			if err := reg.Unload("a"); err != nil && !allowed(err) {
				t.Errorf("Unload: %v", err)
			}
			if err := reg.Load("a", cfg); err != nil {
				t.Errorf("Load: %v", err)
			}
		}
	}()
	// Evictor: force-evict whatever is idle, racing acquire's refcounts.
	evictor.Add(1)
	go func() {
		defer evictor.Done()
		for !done.Load() {
			for _, name := range []string{"a", "b"} {
				if m, err := reg.Get(name); err == nil {
					m.evict()
				}
			}
		}
	}()

	finished := make(chan struct{})
	go func() {
		workers.Wait()
		done.Store(true)
		evictor.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(60 * time.Second):
		t.Fatal("lifecycle churn deadlocked")
	}
}

// TestShutdownDuringDegradedFlood closes the registry while an
// admission-controlled, degrade-enabled model is under a shedding flood.
// Queued waiters must be released promptly (bounded time), every error must
// be a documented admission/lifecycle error, and Close must be idempotent.
func TestShutdownDuringDegradedFlood(t *testing.T) {
	reg := NewRegistry()
	err := reg.Load("hot", ModelConfig{
		Model:   tinyGraph(t),
		Options: []mnn.Option{mnn.WithPoolSize(1), mnn.WithThreads(1)},
		Admission: AdmissionConfig{
			Queue: 4, Concurrency: 1,
			Degrade: "int8", DegradeThreshold: 0.05,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := reg.Get("hot")
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	var served, shed, closedErr atomic.Int64
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			in := map[string]*mnn.Tensor{"data": randomInput(uint64(w), []int{1, 3, 16, 16})}
			for i := 0; i < 50; i++ {
				_, err := m.Infer(ctx, in)
				var oe *admission.OverloadError
				switch {
				case err == nil:
					served.Add(1)
				case errors.As(err, &oe):
					shed.Add(1)
				case errors.Is(err, ErrServerClosed), errors.Is(err, ErrModelNotFound),
					errors.Is(err, mnn.ErrEngineClosed), errors.Is(err, mnn.ErrCancelled):
					closedErr.Add(1)
				default:
					t.Errorf("unexpected error during shutdown flood: %v", err)
				}
			}
		}(w)
	}

	// Let the flood build a backlog, then pull the rug.
	time.Sleep(30 * time.Millisecond)
	start := time.Now()
	if err := reg.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("Close took %v; queued waiters were not released promptly", d)
	}

	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("flood goroutines still blocked after Close — shutdown leaks waiters")
	}

	if closedErr.Load() == 0 {
		t.Error("no request observed the shutdown; Close raced past the whole flood (flaky timing or broken teardown)")
	}
	// Idempotent close.
	if err := reg.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	t.Logf("served=%d shed=%d closed=%d", served.Load(), shed.Load(), closedErr.Load())
}
