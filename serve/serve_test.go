package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mnn"
	"mnn/internal/tensor"
)

// tinyJSON is a small but real network (conv → depthwise → pointwise →
// global pool → softmax) used where built-in ImageNet-sized models would
// just burn test time.
const tinyJSON = `{
  "name": "tiny",
  "inputs": ["data"],
  "outputs": ["prob"],
  "nodes": [
    {"name": "data", "op": "Input", "attrs": {"shape": [1, 3, 16, 16]}},
    {"name": "conv1", "op": "Conv2D", "inputs": ["data"], "weights": ["w1", "b1"],
     "attrs": {"kernel": [3], "pad": [1], "outputs": 8, "relu": true}},
    {"name": "dw", "op": "Conv2D", "inputs": ["conv1"], "weights": ["w2", "b2"],
     "attrs": {"kernel": [3], "pad": [1], "group": 8, "outputs": 8, "relu": true}},
    {"name": "pw", "op": "Conv2D", "inputs": ["dw"], "weights": ["w3", "b3"],
     "attrs": {"kernel": [1], "outputs": 16}},
    {"name": "gap", "op": "Pool", "inputs": ["pw"], "attrs": {"type": "avg", "global": true}},
    {"name": "flat", "op": "Flatten", "inputs": ["gap"], "attrs": {"axis": 1}},
    {"name": "prob", "op": "Softmax", "inputs": ["flat"], "attrs": {"axis": 1}}
  ],
  "weights": [
    {"name": "w1", "shape": [8, 3, 3, 3], "init": "random", "seed": 1, "scale": 0.3},
    {"name": "b1", "shape": [8], "init": "random", "seed": 2, "scale": 0.1},
    {"name": "w2", "shape": [8, 1, 3, 3], "init": "random", "seed": 3, "scale": 0.3},
    {"name": "b2", "shape": [8], "init": "random", "seed": 4, "scale": 0.1},
    {"name": "w3", "shape": [16, 8, 1, 1], "init": "random", "seed": 5, "scale": 0.3},
    {"name": "b3", "shape": [16], "init": "random", "seed": 6, "scale": 0.1}
  ]
}`

func tinyGraph(t *testing.T) *mnn.Graph {
	t.Helper()
	g, err := mnn.ParseJSONModel(strings.NewReader(tinyJSON))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// startServer serves reg on a random loopback port and returns the base URL.
// The returned shutdown func is idempotent and safe to both defer and call.
func startServer(t *testing.T, reg *Registry) (string, func(context.Context) error) {
	t.Helper()
	s := NewServer(reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	var once sync.Once
	shutdown := func(ctx context.Context) error {
		var err error
		once.Do(func() {
			err = s.Shutdown(ctx)
			if serr := <-serveDone; !errors.Is(serr, ErrServerClosed) {
				t.Errorf("Serve returned %v, want ErrServerClosed", serr)
			}
		})
		return err
	}
	t.Cleanup(func() { _ = shutdown(context.Background()) })
	return "http://" + l.Addr().String(), shutdown
}

func doJSON(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rdr io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rdr = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, blob
}

func randomInput(seed uint64, shape []int) *mnn.Tensor {
	in := tensor.New(shape...)
	tensor.FillRandom(in, seed, 1)
	return in
}

// tryInferOverHTTP is the goroutine-safe variant: it reports failures as
// errors instead of t.Fatal (which must not be called off the test
// goroutine). A non-200 status is returned without error so callers can
// assert on it.
func tryInferOverHTTP(base, model string, in *mnn.Tensor) (map[string]*mnn.Tensor, int, []byte, error) {
	req := InferRequest{Inputs: []InferTensor{EncodeTensor("data", in)}}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, nil, err
	}
	hresp, err := http.Post(base+"/v2/models/"+model+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, nil, err
	}
	defer hresp.Body.Close()
	blob, err := io.ReadAll(hresp.Body)
	if err != nil {
		return nil, hresp.StatusCode, nil, err
	}
	if hresp.StatusCode != http.StatusOK {
		return nil, hresp.StatusCode, blob, nil
	}
	var resp InferResponse
	if err := json.Unmarshal(blob, &resp); err != nil {
		return nil, hresp.StatusCode, blob, fmt.Errorf("infer response: %v\n%s", err, blob)
	}
	out := make(map[string]*mnn.Tensor, len(resp.Outputs))
	for _, it := range resp.Outputs {
		dec, err := it.DecodeTensor()
		if err != nil {
			return nil, hresp.StatusCode, blob, fmt.Errorf("decoding output %q: %v", it.Name, err)
		}
		out[it.Name] = dec
	}
	return out, hresp.StatusCode, blob, nil
}

func inferOverHTTP(t *testing.T, base, model string, in *mnn.Tensor) (map[string]*mnn.Tensor, int, []byte) {
	t.Helper()
	out, code, blob, err := tryInferOverHTTP(base, model, in)
	if err != nil {
		t.Fatal(err)
	}
	return out, code, blob
}

func assertIdentical(t *testing.T, label string, got, want map[string]*mnn.Tensor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d outputs, want %d", label, len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("%s: missing output %q", label, name)
		}
		if !tensor.EqualShape(g.Shape(), w.Shape()) {
			t.Fatalf("%s: output %q shape %v, want %v", label, name, g.Shape(), w.Shape())
		}
		gd, wd := g.ToLayout(tensor.NCHW).Data(), w.ToLayout(tensor.NCHW).Data()
		for i := range wd {
			if gd[i] != wd[i] {
				t.Fatalf("%s: output %q element %d = %v, want %v (not element-wise identical)",
					label, name, i, gd[i], wd[i])
			}
		}
	}
}

// TestServeEndToEnd is the acceptance scenario: two built-in networks behind
// one server, ≥8 concurrent HTTP inferences each with micro-batching on,
// every result element-wise identical to the unbatched engine, hot
// load→infer→unload→404 through the repository API, and a graceful shutdown
// that drains an in-flight request.
func TestServeEndToEnd(t *testing.T) {
	// Both networks are fully convolutional into a global pool, so they
	// serve at any spatial size; under the race detector (~20× slower
	// convolutions) a smaller shape keeps the scenario well under timeouts.
	shape := []int{1, 3, 224, 224}
	if raceEnabled {
		shape = []int{1, 3, 64, 64}
	}
	reg := NewRegistry()
	for _, name := range []string{"squeezenet-v1.1", "mobilenet-v1"} {
		err := reg.Load(name, ModelConfig{
			Model: name,
			Options: []mnn.Option{
				mnn.WithPoolSize(2),
				mnn.WithInputShapes(map[string][]int{"data": shape}),
			},
			Batch: BatchConfig{MaxBatch: 4, MaxLatency: 20 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	base, shutdown := startServer(t, reg)

	// Health and metadata surface.
	if code, _ := doJSON(t, http.MethodGet, base+"/v2/health/live", nil); code != http.StatusOK {
		t.Fatalf("live = %d", code)
	}
	if code, _ := doJSON(t, http.MethodGet, base+"/v2/health/ready", nil); code != http.StatusOK {
		t.Fatalf("ready = %d", code)
	}
	code, blob := doJSON(t, http.MethodGet, base+"/v2/models", nil)
	var list ModelList
	if code != http.StatusOK || json.Unmarshal(blob, &list) != nil || len(list.Models) != 2 {
		t.Fatalf("model list = %d %s", code, blob)
	}
	code, blob = doJSON(t, http.MethodGet, base+"/v2/models/mobilenet-v1", nil)
	var md ModelMetadata
	if code != http.StatusOK || json.Unmarshal(blob, &md) != nil {
		t.Fatalf("metadata = %d %s", code, blob)
	}
	if len(md.Inputs) != 1 || md.Inputs[0].Name != "data" ||
		!tensor.EqualShape(md.Inputs[0].Shape, shape) {
		t.Fatalf("metadata inputs = %+v", md.Inputs)
	}

	// ≥8 concurrent inferences per model, checked against the unbatched
	// engine on the very same inputs.
	const concurrent = 8
	for _, name := range []string{"squeezenet-v1.1", "mobilenet-v1"} {
		m, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Batching() {
			t.Fatalf("%s: batcher not active", name)
		}
		inputs := make([]*mnn.Tensor, concurrent)
		want := make([]map[string]*mnn.Tensor, concurrent)
		for i := range inputs {
			inputs[i] = randomInput(uint64(100+i), shape)
			w, err := m.Engine().Infer(context.Background(), map[string]*mnn.Tensor{"data": inputs[i]})
			if err != nil {
				t.Fatalf("%s: reference infer: %v", name, err)
			}
			want[i] = w
		}
		var wg sync.WaitGroup
		got := make([]map[string]*mnn.Tensor, concurrent)
		codes := make([]int, concurrent)
		errs := make([]error, concurrent)
		for i := 0; i < concurrent; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got[i], codes[i], _, errs[i] = tryInferOverHTTP(base, name, inputs[i])
			}(i)
		}
		wg.Wait()
		for i := 0; i < concurrent; i++ {
			if errs[i] != nil {
				t.Fatalf("%s: request %d: %v", name, i, errs[i])
			}
			if codes[i] != http.StatusOK {
				t.Fatalf("%s: request %d status %d", name, i, codes[i])
			}
			assertIdentical(t, fmt.Sprintf("%s req %d", name, i), got[i], want[i])
		}
	}

	// Hot load a model file through the repository API, infer, unload, 404.
	path := filepath.Join(t.TempDir(), "tiny.mnng")
	if err := mnn.SaveModelFile(tinyGraph(t), path); err != nil {
		t.Fatal(err)
	}
	code, blob = doJSON(t, http.MethodPost, base+"/v2/repository/models/tiny/load",
		LoadRequest{Model: path, Options: LoadOptions{Threads: 1}})
	if code != http.StatusOK {
		t.Fatalf("load = %d %s", code, blob)
	}
	tin := randomInput(7, []int{1, 3, 16, 16})
	if _, code, blob := inferOverHTTP(t, base, "tiny", tin); code != http.StatusOK {
		t.Fatalf("tiny infer = %d %s", code, blob)
	}
	if code, blob = doJSON(t, http.MethodPost, base+"/v2/repository/models/tiny/unload", nil); code != http.StatusOK {
		t.Fatalf("unload = %d %s", code, blob)
	}
	_, code, blob = inferOverHTTP(t, base, "tiny", tin)
	if code != http.StatusNotFound {
		t.Fatalf("infer after unload = %d, want 404", code)
	}
	var eresp ErrorResponse
	if err := json.Unmarshal(blob, &eresp); err != nil || eresp.Error == "" {
		t.Fatalf("404 body is not an ErrorResponse: %s", blob)
	}

	// Graceful shutdown drains the in-flight request.
	inflight := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		in := randomInput(999, shape)
		_, code, blob, err := tryInferOverHTTP(base, "mobilenet-v1", in)
		if err != nil {
			inflight <- err
			return
		}
		if code != http.StatusOK {
			inflight <- fmt.Errorf("in-flight infer during shutdown = %d %s", code, blob)
			return
		}
		inflight <- nil
	}()
	<-started
	time.Sleep(50 * time.Millisecond) // let the request reach the handler
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if err := <-inflight; err != nil {
		t.Fatal(err)
	}
	// The drained server refuses new work.
	if _, err := http.Get(base + "/v2/health/ready"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestBatcherPartialFlushAndFallThrough covers the maxLatency partial-flush
// path (pad-and-mask on the bucket engine), the bucketed serving of a shape
// other than the declared one, and the fall-through for requests the
// batcher cannot stack at all.
func TestBatcherPartialFlushAndFallThrough(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	err := reg.Load("tiny", ModelConfig{
		Model:   tinyGraph(t),
		Options: []mnn.Option{mnn.WithPoolSize(2)},
		Batch:   BatchConfig{MaxBatch: 8, MaxLatency: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := reg.Get("tiny")
	if err != nil {
		t.Fatal(err)
	}

	// 3 concurrent requests against maxBatch 8: the latency timer must
	// flush a partial batch — padded and masked on the bucket engine — with
	// results identical to direct unbatched inference.
	inputs := make([]*mnn.Tensor, 3)
	want := make([]map[string]*mnn.Tensor, 3)
	for i := range inputs {
		inputs[i] = randomInput(uint64(i+1), []int{1, 3, 16, 16})
		w, err := m.Engine().Infer(context.Background(), map[string]*mnn.Tensor{"data": inputs[i]})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	var wg sync.WaitGroup
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := m.Infer(context.Background(), map[string]*mnn.Tensor{"data": inputs[i]})
			if err != nil {
				t.Errorf("req %d: %v", i, err)
				return
			}
			assertIdentical(t, fmt.Sprintf("partial req %d", i), got, want[i])
		}(i)
	}
	wg.Wait()

	// A single-sample request with a shape other than the declared one is
	// served by its own shape bucket now (pre-bucketing it was rejected
	// with ErrInputShape), bitwise identical to an engine prepared at that
	// shape.
	odd := randomInput(77, []int{1, 3, 8, 8})
	oddRef, err := mnn.Open(tinyGraph(t), mnn.WithInputShapes(map[string][]int{"data": {1, 3, 8, 8}}))
	if err != nil {
		t.Fatal(err)
	}
	defer oddRef.Close()
	oddWant, err := oddRef.Infer(context.Background(), map[string]*mnn.Tensor{"data": odd})
	if err != nil {
		t.Fatal(err)
	}
	oddGot, err := m.Infer(context.Background(), map[string]*mnn.Tensor{"data": odd})
	if err != nil {
		t.Fatalf("odd shape via bucket: %v", err)
	}
	assertIdentical(t, "odd-shape bucket", oddGot, oddWant)

	// A request that can never occupy one batch slot — leading batch dim
	// that isn't 1 — falls through to the unbatched engine and gets its
	// precise ErrInputShape.
	if _, err := m.Infer(context.Background(), map[string]*mnn.Tensor{"data": tensor.New(2, 3, 16, 16)}); !errors.Is(err, mnn.ErrInputShape) {
		t.Fatalf("batch-dim-2 shape: %v, want ErrInputShape", err)
	}
	// So does a request naming an unknown input.
	if _, err := m.Infer(context.Background(), map[string]*mnn.Tensor{
		"data": randomInput(9, []int{1, 3, 16, 16}), "bogus": tensor.New(1, 3, 8, 8),
	}); !errors.Is(err, mnn.ErrInputShape) {
		t.Fatalf("unknown input: %v, want ErrInputShape", err)
	}
	// A cancelled context surfaces ErrCancelled without hanging.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Infer(ctx, map[string]*mnn.Tensor{"data": inputs[0]}); !errors.Is(err, mnn.ErrCancelled) {
		t.Fatalf("cancelled: %v, want ErrCancelled", err)
	}
}

// TestBatcherFullBatchIdentity drives exactly maxBatch concurrent requests
// so at least one stacked run happens, and checks element-wise identity.
func TestBatcherFullBatchIdentity(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	err := reg.Load("tiny", ModelConfig{
		Model: tinyGraph(t),
		// A generous window so all four requests coalesce into one batch.
		Batch: BatchConfig{MaxBatch: 4, MaxLatency: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := reg.Get("tiny")
	const n = 4
	inputs := make([]*mnn.Tensor, n)
	want := make([]map[string]*mnn.Tensor, n)
	for i := range inputs {
		inputs[i] = randomInput(uint64(50+i), []int{1, 3, 16, 16})
		w, err := m.Engine().Infer(context.Background(), map[string]*mnn.Tensor{"data": inputs[i]})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := m.Infer(context.Background(), map[string]*mnn.Tensor{"data": inputs[i]})
			if err != nil {
				t.Errorf("req %d: %v", i, err)
				return
			}
			assertIdentical(t, fmt.Sprintf("full-batch req %d", i), got, want[i])
		}(i)
	}
	wg.Wait()
}

// TestRegistryLifecycle covers hot swap, unload of unknown models, and
// post-Close behaviour.
func TestRegistryLifecycle(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Load("m", ModelConfig{Model: tinyGraph(t)}); err != nil {
		t.Fatal(err)
	}
	m1, _ := reg.Get("m")
	// Hot swap: same name, new engine; the old model is closed.
	if err := reg.Load("m", ModelConfig{Model: tinyGraph(t)}); err != nil {
		t.Fatal(err)
	}
	m2, _ := reg.Get("m")
	if m1 == m2 {
		t.Fatal("hot swap returned the old model")
	}
	if _, err := m1.Engine().Infer(context.Background(), nil); !errors.Is(err, mnn.ErrEngineClosed) {
		t.Fatalf("old engine after swap: %v, want ErrEngineClosed", err)
	}
	if err := reg.Unload("ghost"); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("unload unknown: %v, want ErrModelNotFound", err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("m"); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("get after close: %v, want ErrModelNotFound", err)
	}
	if err := reg.Load("m", ModelConfig{Model: tinyGraph(t)}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("load after close: %v, want ErrServerClosed", err)
	}
}

// TestServerErrorBodies checks the HTTP status mapping and JSON error
// bodies for the common failure classes.
func TestServerErrorBodies(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Load("tiny", ModelConfig{Model: tinyGraph(t)}); err != nil {
		t.Fatal(err)
	}
	base, _ := startServer(t, reg)

	assertErr := func(label string, wantCode, code int, blob []byte) {
		t.Helper()
		if code != wantCode {
			t.Fatalf("%s: status %d, want %d (%s)", label, code, wantCode, blob)
		}
		var e ErrorResponse
		if err := json.Unmarshal(blob, &e); err != nil || e.Error == "" {
			t.Fatalf("%s: body %s is not an ErrorResponse", label, blob)
		}
	}

	code, blob := doJSON(t, http.MethodGet, base+"/v2/models/ghost", nil)
	assertErr("metadata of unknown model", http.StatusNotFound, code, blob)

	code, blob = doJSON(t, http.MethodPost, base+"/v2/models/tiny/infer",
		InferRequest{Inputs: []InferTensor{{Name: "data", Datatype: "INT64", Shape: []int{1}, Data: []float32{1}}}})
	assertErr("bad datatype", http.StatusBadRequest, code, blob)

	wrong := tensor.New(1, 3, 8, 8)
	code, blob = doJSON(t, http.MethodPost, base+"/v2/models/tiny/infer",
		InferRequest{Inputs: []InferTensor{EncodeTensor("data", wrong)}})
	assertErr("wrong shape", http.StatusBadRequest, code, blob)

	code, blob = doJSON(t, http.MethodPost, base+"/v2/repository/models/x/load",
		LoadRequest{Model: "no-such-network"})
	assertErr("load unknown network", http.StatusNotFound, code, blob)

	code, blob = doJSON(t, http.MethodPost, base+"/v2/repository/models/x/load",
		LoadRequest{Model: "squeezenet-v1.1", Options: LoadOptions{Forward: "quantum"}})
	assertErr("load bad forward type", http.StatusBadRequest, code, blob)

	code, blob = doJSON(t, http.MethodDelete, base+"/v2/repository/models/ghost", nil)
	assertErr("delete unknown model", http.StatusNotFound, code, blob)
}

// TestLoadOptionsPrecision: precision="int8" loads an int8-precision engine
// (reported in metadata), and an unknown precision is a bad request.
func TestLoadOptionsPrecision(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	opts, err := LoadOptions{Threads: 1, Precision: "int8"}.EngineOptions()
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Load("q", ModelConfig{Model: tinyGraph(t), Options: opts}); err != nil {
		t.Fatal(err)
	}
	m, err := reg.Get("q")
	if err != nil {
		t.Fatal(err)
	}
	if m.Engine().Precision() != mnn.PrecisionInt8 {
		t.Errorf("engine precision %v, want int8", m.Engine().Precision())
	}
	md, err := m.Metadata()
	if err != nil {
		t.Fatal(err)
	}
	if md.Precision != "int8" {
		t.Errorf("metadata precision %q, want int8", md.Precision)
	}
	if _, err := (LoadOptions{Precision: "int4"}).EngineOptions(); !errors.Is(err, ErrBadRequest) {
		t.Errorf("precision=int4: got %v, want ErrBadRequest", err)
	}
}

func TestLoadOptionsDefaultThreads(t *testing.T) {
	// A model loaded without threads= must resolve to the engine's auto
	// default (min(GOMAXPROCS, 4)), not silently 1.
	reg := NewRegistry()
	defer reg.Close()
	if err := reg.Load("tiny", ModelConfig{Model: tinyGraph(t)}); err != nil {
		t.Fatal(err)
	}
	m, err := reg.Get("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Engine().Threads(), mnn.DefaultThreads(); got != want {
		t.Errorf("default-loaded model threads = %d, want DefaultThreads() = %d", got, want)
	}
	// An explicit threads option is preserved.
	opts, err := LoadOptions{Threads: 1}.EngineOptions()
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Load("one", ModelConfig{Model: tinyGraph(t), Options: opts}); err != nil {
		t.Fatal(err)
	}
	one, _ := reg.Get("one")
	if got := one.Engine().Threads(); got != 1 {
		t.Errorf("threads=1 model resolved to %d", got)
	}
}
