package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mnn"
	"mnn/internal/tensor"
)

// TestBucketedMixedShapeBitwise is the mixed-shape extension of the serve
// bitwise e2e (run explicitly by the CI serve -race job): three input
// shapes hit one batching model concurrently over HTTP, each shape is
// served by its own bucket's batch engine, and every response is bitwise
// identical to an unbatched engine prepared at that shape.
func TestBucketedMixedShapeBitwise(t *testing.T) {
	shapes := [][]int{{1, 3, 16, 16}, {1, 3, 12, 12}, {1, 3, 20, 20}}
	reg := NewRegistry()
	defer reg.Close()
	err := reg.Load("tiny", ModelConfig{
		Model:   tinyGraph(t),
		Options: []mnn.Option{mnn.WithPoolSize(2)},
		Batch:   BatchConfig{MaxBatch: 4, MaxLatency: 5 * time.Millisecond, Buckets: len(shapes)},
	})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := startServer(t, reg)

	const perShape = 8
	type job struct {
		in   *mnn.Tensor
		want map[string]*mnn.Tensor
		name string
	}
	var jobs []job
	for si, shape := range shapes {
		ref, err := mnn.Open(tinyGraph(t), mnn.WithInputShapes(map[string][]int{"data": shape}))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perShape; i++ {
			in := randomInput(uint64(100*si+i+1), shape)
			want, err := ref.Infer(context.Background(), map[string]*mnn.Tensor{"data": in})
			if err != nil {
				ref.Close()
				t.Fatal(err)
			}
			jobs = append(jobs, job{in: in, want: want, name: fmt.Sprintf("shape %v req %d", shape, i)})
		}
		ref.Close()
	}

	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			got, code, blob, err := tryInferOverHTTP(base, "tiny", j.in)
			if err != nil {
				t.Errorf("%s: %v", j.name, err)
				return
			}
			if code != http.StatusOK {
				t.Errorf("%s: HTTP %d: %s", j.name, code, blob)
				return
			}
			assertIdentical(t, j.name, got, j.want)
		}(j)
	}
	wg.Wait()

	// At least one real batched run happened, and the scrape shows the
	// per-bucket series with every shape's bucket tracked.
	m, _ := reg.Get("tiny")
	st, ok := m.batcherStats()
	if !ok {
		t.Fatal("no batcher stats on a batching model")
	}
	if st.runs == 0 {
		t.Fatal("no batched runs despite concurrent same-shape traffic")
	}
	if len(st.buckets) != len(shapes) {
		t.Fatalf("tracking %d buckets, want %d: %+v", len(st.buckets), len(shapes), st.buckets)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	scrape := string(blob)
	for _, want := range []string{
		`mnn_batch_buckets{model="tiny:1"} 3`,
		`mnn_batch_bucket_depth{model="tiny:1",bucket="data=1x3x12x12"}`,
		`mnn_batch_bucket_fill_ratio{model="tiny:1",bucket="data=1x3x20x20"}`,
		`mnn_batch_bucket_evictions_total{model="tiny:1"} 0`,
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestBucketedPartialPadMask: a partial batch (3 requests, maxBatch 8) in
// a dynamic bucket — which has no unbatched engine at its shape — runs on
// the bucket's batch engine via pad-and-mask: one batched run carrying all
// three requests, bitwise identical to unbatched inference at that shape.
func TestBucketedPartialPadMask(t *testing.T) {
	shape := []int{1, 3, 12, 12}
	reg := NewRegistry()
	defer reg.Close()
	err := reg.Load("tiny", ModelConfig{
		Model: tinyGraph(t),
		Batch: BatchConfig{MaxBatch: 8, MaxLatency: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := reg.Get("tiny")
	ref, err := mnn.Open(tinyGraph(t), mnn.WithInputShapes(map[string][]int{"data": shape}))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	const n = 3
	inputs := make([]*mnn.Tensor, n)
	want := make([]map[string]*mnn.Tensor, n)
	for i := range inputs {
		inputs[i] = randomInput(uint64(i+30), shape)
		w, err := ref.Infer(context.Background(), map[string]*mnn.Tensor{"data": inputs[i]})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := m.Infer(context.Background(), map[string]*mnn.Tensor{"data": inputs[i]})
			if err != nil {
				t.Errorf("req %d: %v", i, err)
				return
			}
			assertIdentical(t, fmt.Sprintf("padded req %d", i), got, want[i])
		}(i)
	}
	wg.Wait()

	m.lifeMu.Lock()
	b := m.batcher
	m.lifeMu.Unlock()
	if runs := b.batchRuns.Load(); runs < 1 {
		t.Fatal("partial batch never ran on the bucket engine")
	}
	b.mu.Lock()
	bkt := b.buckets["data=1x3x12x12"]
	var samples uint64
	if bkt != nil {
		samples = bkt.samples
	}
	b.mu.Unlock()
	if samples != n {
		t.Fatalf("bucket engine served %d samples, want %d (some requests fell through unbatched)", samples, n)
	}
}

// TestBucketLRUEviction: with the bucket table bounded at 2, a third shape
// evicts the least-recently-used idle bucket instead of leaking engines,
// every shape still serves bitwise-correct results, and closing the
// registry returns the resident-byte accounting to zero (dynamic bucket
// engines included).
func TestBucketLRUEviction(t *testing.T) {
	reg := NewRegistry()
	err := reg.Load("tiny", ModelConfig{
		Model: tinyGraph(t),
		Batch: BatchConfig{MaxBatch: 2, MaxLatency: time.Millisecond, Buckets: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := reg.Get("tiny")
	for i, shape := range [][]int{{1, 3, 16, 16}, {1, 3, 12, 12}, {1, 3, 20, 20}, {1, 3, 10, 10}} {
		in := randomInput(uint64(i+60), shape)
		ref, err := mnn.Open(tinyGraph(t), mnn.WithInputShapes(map[string][]int{"data": shape}))
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Infer(context.Background(), map[string]*mnn.Tensor{"data": in})
		ref.Close()
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Infer(context.Background(), map[string]*mnn.Tensor{"data": in})
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		assertIdentical(t, fmt.Sprintf("shape %v", shape), got, want)
	}
	st, _ := m.batcherStats()
	if len(st.buckets) > 2 {
		t.Fatalf("bucket table grew to %d, want <= 2", len(st.buckets))
	}
	if st.evictions < 1 {
		t.Fatal("no bucket evictions despite 4 shapes against a bound of 2")
	}
	reg.Close()
	if got := reg.ResidentBytes(); got != 0 {
		t.Fatalf("resident bytes %d after Close, want 0 (dynamic bucket engines leaked from the accounting)", got)
	}
}

// TestBucketsOneFallThrough: Buckets=1 confines batching to the model's
// declared input shape — the pre-bucketing behaviour where every other
// shape falls through to the unbatched engine's precise validation error.
func TestBucketsOneFallThrough(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	err := reg.Load("tiny", ModelConfig{
		Model: tinyGraph(t),
		Batch: BatchConfig{MaxBatch: 4, MaxLatency: time.Millisecond, Buckets: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := reg.Get("tiny")
	if _, err := m.Infer(context.Background(), map[string]*mnn.Tensor{"data": tensor.New(1, 3, 8, 8)}); !errors.Is(err, mnn.ErrInputShape) {
		t.Fatalf("odd shape with buckets=1: %v, want ErrInputShape", err)
	}
	// The declared shape still batches.
	got, err := m.Infer(context.Background(), map[string]*mnn.Tensor{"data": randomInput(5, []int{1, 3, 16, 16})})
	if err != nil || len(got) == 0 {
		t.Fatalf("declared shape: %v", err)
	}
}

// TestBatcherQueuedContextCancelled is the context-propagation regression:
// a caller that gives up while its request is queued must get ErrCancelled
// and must NOT burn an engine run — the old partial-flush path ran the
// fallback under context.Background() for exactly such ghosts.
func TestBatcherQueuedContextCancelled(t *testing.T) {
	g := tinyGraph(t)
	eng, err := mnn.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	b, err := newBatcher(ModelConfig{
		Model: g,
		Batch: BatchConfig{MaxBatch: 8, MaxLatency: time.Hour},
	}, eng, batcherHooks{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := b.infer(ctx, map[string]*mnn.Tensor{"data": randomInput(7, []int{1, 3, 16, 16})})
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond) // request is now queued in its bucket
	cancel()
	if err := <-errCh; !errors.Is(err, mnn.ErrCancelled) {
		t.Fatalf("queued-then-cancelled request: %v, want ErrCancelled", err)
	}
	// close flushes the queue through the workers; the dead member must be
	// dropped at stack time, not run for a caller that's gone.
	b.close()
	if runs := b.batchRuns.Load(); runs != 0 {
		t.Fatalf("batched engine ran %d times for a batch whose only member had cancelled", runs)
	}
}

// TestRunContextMinDeadline pins the second half of the context bugfix:
// the batched run's context carries the earliest effective deadline among
// the batch members (and no deadline when none of them have one).
func TestRunContextMinDeadline(t *testing.T) {
	t1 := time.Now().Add(time.Hour)
	t2 := t1.Add(-30 * time.Minute)
	ctx, cancel := runContext([]*batchReq{{}, {deadline: t1}, {deadline: t2}})
	defer cancel()
	d, ok := ctx.Deadline()
	if !ok || !d.Equal(t2) {
		t.Fatalf("run deadline %v (ok=%v), want %v", d, ok, t2)
	}
	ctx2, cancel2 := runContext([]*batchReq{{}, {}})
	defer cancel2()
	if _, ok := ctx2.Deadline(); ok {
		t.Fatal("run context has a deadline although no member does")
	}
}

// TestSplitOutputsSingleConversion is the allocs regression for the split
// path: the batched output tensor is layout-converted once per flush, not
// once per request. With per-request conversion, splitting an 8-deep batch
// allocates ~8 extra batch-sized tensors; the byte bound below sits 2×
// above the hoisted cost and 2× below the regressed one.
func TestSplitOutputsSingleConversion(t *testing.T) {
	const n = 8
	outShape := []int{n, 64, 8, 8}
	perShape := []int{1, 64, 8, 8}
	perLen := tensor.NumElements(perShape)
	bkt := &bucket{
		outShape: map[string][]int{"prob": perShape},
		outLen:   map[string]int{"prob": perLen},
	}
	src := tensor.NewWithLayout(tensor.NC4HW4, outShape...)
	out := map[string]*mnn.Tensor{"prob": src}
	names := []string{"prob"}

	const iters = 64
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		res := splitOutputs(names, bkt, out, n)
		if len(res) != n {
			t.Fatalf("split produced %d request outputs, want %d", len(res), n)
		}
	}
	runtime.ReadMemStats(&after)
	perOp := (after.TotalAlloc - before.TotalAlloc) / iters

	batchBytes := uint64(tensor.NumElements(outShape)) * 4
	// Hoisted: one conversion (~batchBytes) + n per-request tensors
	// (~batchBytes total) ≈ 2×batchBytes. Regressed: n conversions ≈
	// (n+1)×batchBytes.
	if limit := 4 * batchBytes; perOp > limit {
		t.Fatalf("splitOutputs allocates %d B/op, want <= %d (layout conversion back inside the per-request loop?)", perOp, limit)
	}
}

// TestBatcherShutdownRace: requests racing close() must each get exactly
// one response — a request that wins the submit immediately before the
// quit channel closes is drained and answered, later ones fall through to
// the unbatched engine — and close() itself returns. Run under -race in
// CI; a double response would deadlock a dispatch worker and hang the test.
func TestBatcherShutdownRace(t *testing.T) {
	g := tinyGraph(t)
	eng, err := mnn.Open(g, mnn.WithPoolSize(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := newBatcher(ModelConfig{
		Model: g,
		Batch: BatchConfig{MaxBatch: 4, MaxLatency: 200 * time.Microsecond, Buckets: 3},
	}, eng, batcherHooks{})
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	shapes := [][]int{{1, 3, 16, 16}, {1, 3, 12, 12}}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := randomInput(uint64(i+1), shapes[i%len(shapes)])
			for {
				if _, err := b.infer(context.Background(), map[string]*mnn.Tensor{"data": in}); err != nil {
					// Once close() has fallen the batcher through to the
					// unbatched engine, non-primary shapes are rejected with
					// the engine's own shape error — a valid single response.
					if !errors.Is(err, mnn.ErrInputShape) {
						t.Errorf("submitter %d: %v", i, err)
					}
					return
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	b.close() // engines close under live submit traffic; must drain, not hang
	close(stop)
	wg.Wait()
	eng.Close()
}
