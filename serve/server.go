package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"mnn"
	"mnn/serve/admission"
)

// Version is reported in GET /v2 server metadata.
const Version = "0.1.0"

// MaxBodyBytes caps infer/load request bodies (256 MiB — far above any
// realistic batch-1 tensor payload) so one client cannot OOM the server.
const MaxBodyBytes = 256 << 20

// LoadOptions is the JSON form of the engine options a client may set when
// hot-loading a model through the repository API. The zero value means the
// engine defaults. It is also what cmd/mnnserve parses its -model flags into.
type LoadOptions struct {
	PoolSize int `json:"pool_size,omitempty"`
	// Threads is the CPU worker-pool width per pooled session; 0 resolves
	// to mnn.DefaultThreads() = min(GOMAXPROCS, 4). Total worker
	// goroutines for a model ≈ PoolSize × Threads, held parked between
	// requests by the persistent scheduler.
	Threads int    `json:"threads,omitempty"`
	Forward string `json:"forward,omitempty"`
	Device  string `json:"device,omitempty"`
	// Precision selects the execution precision ("fp32" default, "int8"
	// runs the quantized kernel path — see mnn.WithPrecision).
	Precision string `json:"precision,omitempty"`
	// Tuning selects the kernel-search mode ("heuristic" default, "cost",
	// "measured" — see mnn.WithTuning). Measured tuning runs micro-benchmarks
	// during load unless TuningCache already holds this host's results.
	Tuning string `json:"tuning,omitempty"`
	// TuningCache is the persistent tuning-cache path on the server
	// (mnn.WithTuningCache); meaningful with Tuning "measured".
	TuningCache string           `json:"tuning_cache,omitempty"`
	InputShapes map[string][]int `json:"input_shapes,omitempty"`
	// MaxInputShapes opens a dynamic engine planned once at these maxima;
	// requests may then use any shape elementwise ≤ the max without
	// re-preparation (mnn.WithMaxInputShapes). Mutually exclusive with
	// InputShapes. With batching, the batcher switches to dynamic mode:
	// one shared batch engine serves every in-plan shape bucket.
	MaxInputShapes map[string][]int `json:"max_input_shapes,omitempty"`
}

// EngineOptions converts the wire form into mnn.Open options.
func (o LoadOptions) EngineOptions() ([]mnn.Option, error) {
	var opts []mnn.Option
	if o.PoolSize > 0 {
		opts = append(opts, mnn.WithPoolSize(o.PoolSize))
	}
	if o.Threads > 0 {
		opts = append(opts, mnn.WithThreads(o.Threads))
	}
	if o.Forward != "" {
		ft, err := mnn.ParseForwardType(o.Forward)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		opts = append(opts, mnn.WithForwardType(ft))
	}
	if o.Device != "" {
		opts = append(opts, mnn.WithDevice(o.Device))
	}
	if o.Precision != "" {
		p, err := mnn.ParsePrecision(o.Precision)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		opts = append(opts, mnn.WithPrecision(p))
	}
	if o.Tuning != "" {
		m, err := mnn.ParseTuningMode(o.Tuning)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		opts = append(opts, mnn.WithTuning(m))
	}
	if o.TuningCache != "" {
		opts = append(opts, mnn.WithTuningCache(o.TuningCache))
	}
	if len(o.InputShapes) > 0 {
		opts = append(opts, mnn.WithInputShapes(o.InputShapes))
	}
	if len(o.MaxInputShapes) > 0 {
		if len(o.InputShapes) > 0 {
			return nil, fmt.Errorf("%w: input_shapes and max_input_shapes are mutually exclusive", ErrBadRequest)
		}
		opts = append(opts, mnn.WithMaxInputShapes(o.MaxInputShapes))
	}
	return opts, nil
}

// LoadRequest is the POST /v2/repository/models/{name}/load request body.
type LoadRequest struct {
	// Model is a built-in network name (see mnn.Networks()) or the path of
	// a serialized .mnng model file on the server.
	Model   string      `json:"model"`
	Options LoadOptions `json:"options"`
	// MaxBatch > 1 enables the dynamic micro-batcher at that batch size.
	MaxBatch int `json:"max_batch,omitempty"`
	// MaxLatencyMs is the batching window in milliseconds (default 2).
	MaxLatencyMs float64 `json:"max_latency_ms,omitempty"`
	// Buckets bounds how many input-shape buckets the micro-batcher keeps
	// batch engines for (0 = default; 1 = only the declared input shape,
	// other shapes fall through unbatched).
	Buckets int `json:"buckets,omitempty"`
	// Queue > 0 enables admission control: a bounded queue of that depth in
	// front of the engine, with overflow rejected as HTTP 429.
	Queue int `json:"queue,omitempty"`
	// SLOMs is the per-model latency budget in milliseconds; requests that
	// cannot meet it given the current backlog are shed immediately.
	SLOMs float64 `json:"slo_ms,omitempty"`
	// Priority is the default class for requests without an
	// X-Request-Priority header: "normal" (default), "high", or "batch".
	Priority string `json:"priority,omitempty"`
	// Degrade ("int8") routes to a quantized sibling engine while the
	// shed-rate EWMA stays above the degrade threshold.
	Degrade string `json:"degrade,omitempty"`
	// Version loads the model under name:version when the URL path carries
	// a bare name (default version "1"). A versioned path and a body
	// version must agree.
	Version string `json:"version,omitempty"`
	// Default pins this version as what bare-name references resolve to.
	Default bool `json:"default,omitempty"`
	// Lazy defers opening the engines until the first request and makes the
	// model evictable under the server's memory budget.
	Lazy bool `json:"lazy,omitempty"`
}

// ModelConfig converts the wire form into a registry load.
func (r LoadRequest) ModelConfig() (ModelConfig, error) {
	if r.Model == "" {
		return ModelConfig{}, fmt.Errorf("%w: load request missing \"model\"", ErrBadRequest)
	}
	if r.Options.TuningCache != "" {
		// The load API reads server paths (the model file) but must never
		// hand clients a write primitive: a tuning cache is created with
		// MkdirAll + rename at an arbitrary path. Operators set cache paths
		// via mnnserve -model flags; API loads still tune, non-persistently.
		return ModelConfig{}, fmt.Errorf("%w: tuning_cache cannot be set through the repository API (configure it server-side via mnnserve -model)", ErrBadRequest)
	}
	if mode, err := mnn.ParseTuningMode(r.Options.Tuning); err == nil &&
		mode == mnn.TuningMeasured && r.MaxBatch > 1 {
		// The micro-batcher's second engine must commit exactly the
		// unbatched engine's algorithms or batched results stop being
		// bitwise identical to unbatched ones. Measured picks are only
		// guaranteed to repeat across the two engines through a shared
		// tuning cache — which the API cannot set — so measured+batching is
		// operator-side configuration only.
		return ModelConfig{}, fmt.Errorf("%w: measured tuning with batching requires a shared tuning cache; configure both server-side via mnnserve -model (tuning=measured,tuningcache=...,maxbatch=...)", ErrBadRequest)
	}
	opts, err := r.Options.EngineOptions()
	if err != nil {
		return ModelConfig{}, err
	}
	pri, err := admission.ParsePriority(r.Priority)
	if err != nil {
		return ModelConfig{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return ModelConfig{
		Model:   r.Model,
		Options: opts,
		Batch: BatchConfig{
			MaxBatch:   r.MaxBatch,
			MaxLatency: time.Duration(r.MaxLatencyMs * float64(time.Millisecond)),
			Buckets:    r.Buckets,
		},
		Admission: AdmissionConfig{
			Queue:           r.Queue,
			SLO:             time.Duration(r.SLOMs * float64(time.Millisecond)),
			DefaultPriority: pri,
			Degrade:         r.Degrade,
		},
		Lazy: r.Lazy,
	}, nil
}

// Server is the HTTP front of a Registry. Create with NewServer, start with
// Serve or ListenAndServe, stop with Shutdown (which drains in-flight
// requests before closing the registry's engines).
type Server struct {
	reg      *Registry
	http     *http.Server
	notReady atomic.Bool
}

// NewServer wraps a registry. The server takes ownership of the registry:
// Shutdown closes it.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg}
	s.http = &http.Server{Handler: s.Handler()}
	return s
}

// Handler builds the protocol routing table. It can be mounted into an
// existing mux; the paths are absolute.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2", s.handleServerMetadata)
	mux.HandleFunc("GET /v2/health/live", s.handleLive)
	mux.HandleFunc("GET /v2/health/ready", s.handleReady)
	mux.HandleFunc("GET /v2/models", s.handleModelList)
	mux.HandleFunc("GET /v2/models/{name}", s.handleModelMetadata)
	mux.HandleFunc("GET /v2/models/{name}/ready", s.handleModelReady)
	mux.HandleFunc("POST /v2/models/{name}/infer", s.handleInfer)
	mux.HandleFunc("POST /v2/repository/models/{name}/load", s.handleLoad)
	mux.HandleFunc("POST /v2/repository/models/{name}/unload", s.handleUnload)
	mux.HandleFunc("DELETE /v2/repository/models/{name}", s.handleUnload)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return recoverHandler(mux)
}

// recoverHandler is the serving tier's outermost crash barrier: a panic
// that escapes a handler (the engine barriers convert kernel panics to
// errors long before this) turns into a 500 on this request instead of
// killing the connection's goroutine state machine mid-response.
// http.ErrAbortHandler is re-panicked — it is the sanctioned way to abort
// a response and net/http handles it quietly.
func recoverHandler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				// Best effort: if the handler already wrote headers this
				// write is a no-op and the client sees a torn body, which
				// is still strictly better than a crashed server.
				writeError(w, fmt.Errorf("%w: handler panic: %v", errInternalPanic, rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// errInternalPanic marks a handler panic caught by the outer barrier.
var errInternalPanic = errors.New("serve: internal error")

// handleMetrics renders the Prometheus text exposition: per-model latency
// histograms (queue wait + infer), queue depth/capacity, in-flight, shed
// and degrade counters, batch-fill ratio, and per-model request totals
// (rate() of which is QPS). Gauges are refreshed at scrape time.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reg.refreshMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.metrics.reg.WriteText(w)
}

// Registry exposes the registry (e.g. to pre-load models before serving).
func (s *Server) Registry() *Registry { return s.reg }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.http.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return ErrServerClosed
	}
	return err
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown gracefully stops the server: readiness flips to 503, listeners
// close, in-flight requests drain (bounded by ctx), and only then are the
// registry's engines closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.notReady.Store(true)
	err := s.http.Shutdown(ctx)
	if cerr := s.reg.Close(); err == nil {
		err = cerr
	}
	return err
}

func (s *Server) handleServerMetadata(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ServerMetadata{
		Name:       "mnnserve",
		Version:    Version,
		Extensions: []string{"model_repository"},
	})
}

func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"live": true})
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.notReady.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ready": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
}

func (s *Server) handleModelList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ModelList{Models: s.reg.Names(), Refs: s.reg.Refs()})
}

func (s *Server) handleModelMetadata(w http.ResponseWriter, r *http.Request) {
	m, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	md, err := m.Metadata()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, md)
}

func (s *Server) handleModelReady(w http.ResponseWriter, r *http.Request) {
	m, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	if m.Quarantined() {
		w.Header().Set("X-Model-Quarantined", "true")
		writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ready": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
}

// requestContext derives the inference context from the client's deadline
// headers: X-Request-Timeout (a Go duration, e.g. "250ms") is relative to
// arrival; X-Request-Deadline (RFC 3339 with fractional seconds) is
// absolute. The tighter of the two wins. Malformed values are 400s —
// silently ignoring a deadline would turn load shedding off for exactly the
// clients that asked for it.
func requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if v := r.Header.Get("X-Request-Timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return nil, nil, fmt.Errorf("%w: invalid X-Request-Timeout %q: want a positive Go duration like \"250ms\"", ErrBadRequest, v)
		}
		ctx, cancel = context.WithTimeout(ctx, d)
	}
	if v := r.Header.Get("X-Request-Deadline"); v != "" {
		t, err := time.Parse(time.RFC3339Nano, v)
		if err != nil {
			cancel()
			return nil, nil, fmt.Errorf("%w: invalid X-Request-Deadline %q: want RFC 3339, e.g. \"2026-01-02T15:04:05.999Z\"", ErrBadRequest, v)
		}
		outer := cancel
		var inner context.CancelFunc
		ctx, inner = context.WithDeadline(ctx, t)
		cancel = func() { inner(); outer() }
	}
	return ctx, cancel, nil
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	m, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	// Every outcome past model resolution lands in
	// mnn_requests_total{model,code}.
	writeErr := func(err error) {
		m.mm.observeRequest(writeError(w, err))
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeErr(err)
		return
	}
	defer cancel()
	pri := m.DefaultPriority()
	if v := r.Header.Get("X-Request-Priority"); v != "" {
		pri, err = admission.ParsePriority(v)
		if err != nil {
			writeErr(fmt.Errorf("%w: invalid X-Request-Priority: %v", ErrBadRequest, err))
			return
		}
	}
	var req InferRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes)).Decode(&req); err != nil {
		writeErr(fmt.Errorf("%w: decoding infer request: %v", ErrBadRequest, err))
		return
	}
	inputs, err := req.DecodeInputs()
	if err != nil {
		writeErr(err)
		return
	}
	outputs, info, err := m.InferWith(ctx, inputs, pri)
	if err != nil {
		writeErr(err)
		return
	}
	// OutputNames is cached at load time (and stable across evictions), so
	// this never races a concurrent eviction closing the engine.
	resp, err := req.EncodeOutputs(m.Name(), m.OutputNames(), outputs)
	if err != nil {
		writeErr(err)
		return
	}
	resp.Precision = info.Precision
	writeJSON(w, http.StatusOK, resp)
	m.mm.observeRequest(http.StatusOK)
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req LoadRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("%w: decoding load request: %v", ErrBadRequest, err))
		return
	}
	cfg, err := req.ModelConfig()
	if err != nil {
		writeError(w, err)
		return
	}
	ref := r.PathValue("name")
	if req.Version != "" {
		name, version := SplitRef(ref)
		if version != "" && version != req.Version {
			writeError(w, fmt.Errorf("%w: path version %q and body version %q disagree", ErrBadRequest, version, req.Version))
			return
		}
		ref = JoinRef(name, req.Version)
	}
	if err := s.reg.Load(ref, cfg); err != nil {
		writeError(w, err)
		return
	}
	if req.Default {
		name, version := SplitRef(ref)
		if version == "" {
			version = DefaultVersion
		}
		if err := s.reg.SetDefault(name, version); err != nil {
			writeError(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"name": ref, "state": "loaded"})
}

func (s *Server) handleUnload(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Unload(r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"name": r.PathValue("name"), "state": "unloaded"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps typed errors onto protocol status codes with a JSON body
// and returns the code it wrote. Overload rejections additionally carry a
// Retry-After header with the admission controller's backlog-drain estimate.
func writeError(w http.ResponseWriter, err error) int {
	code := http.StatusInternalServerError
	var oe *admission.OverloadError
	switch {
	case errors.As(err, &oe):
		code = http.StatusTooManyRequests
		secs := int(math.Ceil(oe.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	case errors.Is(err, admission.ErrOverloaded):
		// Wrapped without the struct (shouldn't happen, but stay 429).
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrModelQuarantined):
		// The replica is healthy, this model is not: 503 plus a marker
		// header so the mesh router retries the request on another
		// replica instead of backing off against this one.
		code = http.StatusServiceUnavailable
		w.Header().Set("X-Model-Quarantined", "true")
		var qe *QuarantinedError
		if errors.As(err, &qe) {
			if secs := int(math.Ceil(time.Until(qe.Until).Seconds())); secs >= 1 {
				w.Header().Set("Retry-After", strconv.Itoa(secs))
			}
		}
	case errors.Is(err, mnn.ErrKernelPanic):
		// Contained crash: the process and every other model are fine;
		// the request gets a typed 500.
		code = http.StatusInternalServerError
	case errors.Is(err, ErrModelNotFound), errors.Is(err, mnn.ErrUnknownNetwork):
		code = http.StatusNotFound
	case errors.Is(err, ErrBadRequest), errors.Is(err, mnn.ErrInputShape),
		errors.Is(err, mnn.ErrShapeOutOfPlan),
		errors.Is(err, mnn.ErrUnknownDevice), errors.Is(err, mnn.ErrUnknownBackend):
		code = http.StatusBadRequest
	case errors.Is(err, ErrServerClosed), errors.Is(err, mnn.ErrEngineClosed),
		errors.Is(err, admission.ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, mnn.ErrCancelled):
		// The client usually went away; 499-style, but stay standard.
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
	return code
}
