package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mnn"
	"mnn/internal/fault"
	"mnn/internal/leakcheck"
)

func chaosInjector(t *testing.T, seed uint64, spec string) *fault.Injector {
	t.Helper()
	p, err := fault.ParsePlan(seed, spec)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", spec, err)
	}
	return fault.NewInjector(p)
}

var smallOpts = []mnn.Option{mnn.WithPoolSize(1), mnn.WithThreads(1)}

// TestRegistryLoadFaultAtomic pins the atomic-load contract: a failure in
// the middle of loadLocked — after engines exist — leaves no partial
// registry entry and leaks no engine, and the typed error surfaces.
func TestRegistryLoadFaultAtomic(t *testing.T) {
	leakcheck.Check(t)
	reg := NewRegistry()
	defer reg.Close()
	reg.SetFaultInjector(chaosInjector(t, 1, "registry.load=error,count=1,match=mid:"))
	cfg := ModelConfig{Model: tinyGraph(t), Options: smallOpts}
	err := reg.Load("tiny", cfg)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Load = %v, want injected error", err)
	}
	if _, err := reg.Get("tiny"); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("failed load left a registry entry: Get = %v", err)
	}
	// The count budget is spent; the same Load now succeeds and serves.
	if err := reg.Load("tiny", cfg); err != nil {
		t.Fatalf("reload after fault = %v", err)
	}
	m, err := reg.Get("tiny")
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]*mnn.Tensor{"data": randomInput(7, []int{1, 3, 16, 16})}
	if _, err := m.Infer(context.Background(), in); err != nil {
		t.Fatalf("Infer after recovered load = %v", err)
	}
}

// TestRegistryLazyLoadFaultRetries: a lazy model whose first on-demand
// load fails (pre-engine) stays registered and loads cleanly on the next
// request — no poisoned state.
func TestRegistryLazyLoadFaultRetries(t *testing.T) {
	leakcheck.Check(t)
	reg := NewRegistry()
	defer reg.Close()
	reg.SetFaultInjector(chaosInjector(t, 1, "registry.load=error,count=1,match=pre:"))
	if err := reg.Load("tiny", ModelConfig{Model: tinyGraph(t), Options: smallOpts, Lazy: true}); err != nil {
		t.Fatalf("lazy Load (registration only) = %v", err)
	}
	m, err := reg.Get("tiny")
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]*mnn.Tensor{"data": randomInput(7, []int{1, 3, 16, 16})}
	if _, err := m.Infer(context.Background(), in); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("first request = %v, want injected load error", err)
	}
	if m.Loaded() {
		t.Fatal("failed lazy load marked the model loaded")
	}
	if _, err := m.Infer(context.Background(), in); err != nil {
		t.Fatalf("retry after failed lazy load = %v", err)
	}
}

// TestModelQuarantineLifecycle drives the full containment story over
// HTTP: repeated kernel panics return typed 500s, the model quarantines
// (503 + X-Model-Quarantined on infer and /ready, counters on /metrics),
// and after the cooldown a clean half-open probe restores it.
func TestModelQuarantineLifecycle(t *testing.T) {
	leakcheck.Check(t)
	reg := NewRegistry()
	reg.SetFaultInjector(chaosInjector(t, 2, "session.kernel=panic,count=2,match=conv1"))
	reg.SetQuarantinePolicy(2, 300*time.Millisecond)
	if err := reg.Load("tiny", ModelConfig{Model: tinyGraph(t), Options: smallOpts}); err != nil {
		t.Fatal(err)
	}
	base, _ := startServer(t, reg)
	in := randomInput(7, []int{1, 3, 16, 16})
	for i := 0; i < 2; i++ {
		_, code, blob := inferOverHTTP(t, base, "tiny", in)
		if code != http.StatusInternalServerError {
			t.Fatalf("panic %d: status %d (%s), want 500", i, code, blob)
		}
		if !strings.Contains(string(blob), "kernel panic") {
			t.Fatalf("panic %d: body %q does not name the kernel panic", i, blob)
		}
	}
	// Third request hits the quarantine gate, not the engine.
	body, err := json.Marshal(InferRequest{Inputs: []InferTensor{EncodeTensor("data", in)}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v2/models/tiny/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quarantined infer status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("X-Model-Quarantined") != "true" {
		t.Fatal("quarantined 503 is missing the X-Model-Quarantined header")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quarantined 503 is missing Retry-After")
	}
	// Readiness and metrics surface the quarantine.
	rr, err := http.Get(base + "/v2/models/tiny/ready")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable || rr.Header.Get("X-Model-Quarantined") != "true" {
		t.Fatalf("ready while quarantined: status %d, header %q", rr.StatusCode, rr.Header.Get("X-Model-Quarantined"))
	}
	metricsText := func() string {
		code, blob := doJSON(t, http.MethodGet, base+"/metrics", nil)
		if code != http.StatusOK {
			t.Fatalf("/metrics = %d", code)
		}
		return string(blob)
	}
	text := metricsText()
	for _, want := range []string{
		`mnn_kernel_panics_total{model="tiny:1"} 2`,
		`mnn_model_quarantines_total{model="tiny:1"} 1`,
		`mnn_model_quarantined{model="tiny:1"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	// Cooldown passes; the panic budget is spent, so the half-open probe
	// succeeds and the model visibly recovers.
	time.Sleep(350 * time.Millisecond)
	out, code, blob := inferOverHTTP(t, base, "tiny", in)
	if code != http.StatusOK || out["prob"] == nil {
		t.Fatalf("post-cooldown infer: status %d (%s)", code, blob)
	}
	rr2, err := http.Get(base + "/v2/models/tiny/ready")
	if err != nil {
		t.Fatal(err)
	}
	rr2.Body.Close()
	if rr2.StatusCode != http.StatusOK {
		t.Fatalf("ready after recovery = %d, want 200", rr2.StatusCode)
	}
	if !strings.Contains(metricsText(), `mnn_model_quarantined{model="tiny:1"} 0`) {
		t.Fatal("quarantine gauge did not return to 0 after recovery")
	}
}

// TestRecoverHandlerBarrier: a panic escaping a handler becomes a 500 on
// that request; http.ErrAbortHandler passes through untouched.
func TestRecoverHandlerBarrier(t *testing.T) {
	h := recoverHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "handler panic") {
		t.Fatalf("500 body %q does not mention the panic", rec.Body.String())
	}

	abort := recoverHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if r := recover(); r != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want http.ErrAbortHandler to pass through", r)
		}
	}()
	abort.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/x", nil))
	t.Fatal("ErrAbortHandler was swallowed")
}

// TestServerShutdownNoLeaksUnderChaos: Shutdown during a request storm
// with injected kernel panics and errors still releases every goroutine.
func TestServerShutdownNoLeaksUnderChaos(t *testing.T) {
	leakcheck.Check(t)
	reg := NewRegistry()
	reg.SetFaultInjector(chaosInjector(t, 3,
		"session.kernel=panic,p=0.3,match=dw;engine.infer=error,p=0.2"))
	if err := reg.Load("tiny", ModelConfig{Model: tinyGraph(t), Options: []mnn.Option{
		mnn.WithPoolSize(2), mnn.WithThreads(2)}}); err != nil {
		t.Fatal(err)
	}
	base, shutdown := startServer(t, reg)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := randomInput(uint64(g+1), []int{1, 3, 16, 16})
			for i := 0; i < 6; i++ {
				// Outcomes are irrelevant (conn errors once shutdown
				// lands are expected); the assertion is the leak check.
				_, _, _, _ = tryInferOverHTTP(base, "tiny", in)
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond) // let the storm overlap shutdown
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := shutdown(ctx); err != nil {
		t.Fatalf("shutdown under chaos = %v", err)
	}
	wg.Wait()
}
