package serve

import (
	"encoding/json"
	"errors"
	"testing"

	"mnn"
	"mnn/internal/tensor"
)

// TestTensorRoundTrip encodes a tensor to the wire form, through JSON,
// back to a tensor, and out again: every hop must be lossless, including
// float32 values that need shortest-round-trip formatting.
func TestTensorRoundTrip(t *testing.T) {
	src := tensor.New(2, 3, 4, 5)
	tensor.FillRandom(src, 42, 1)
	src.Data()[0] = 0.0010925309 // a value whose decimal form is non-trivial
	wire := EncodeTensor("data", src)
	if wire.Datatype != DatatypeFP32 || !tensor.EqualShape(wire.Shape, []int{2, 3, 4, 5}) {
		t.Fatalf("wire header = %+v", wire)
	}
	blob, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	var parsed InferTensor
	if err := json.Unmarshal(blob, &parsed); err != nil {
		t.Fatal(err)
	}
	dec, err := parsed.DecodeTensor()
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualShape(dec.Shape(), src.Shape()) {
		t.Fatalf("decoded shape %v != %v", dec.Shape(), src.Shape())
	}
	for i, v := range dec.Data() {
		if v != src.Data()[i] {
			t.Fatalf("elem %d: %v != %v after round trip", i, v, src.Data()[i])
		}
	}
	// encode(decode(encode(x))) == encode(x).
	again := EncodeTensor("data", dec)
	blob2, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("second encode differs:\n%s\n%s", blob, blob2)
	}
}

// TestTensorRoundTripNC4HW4 checks that packed-layout tensors are exported
// in logical NCHW order, not physical padded order.
func TestTensorRoundTripNC4HW4(t *testing.T) {
	packed := tensor.NewWithLayout(tensor.NC4HW4, 1, 3, 2, 2) // 3 channels → one padded
	want := make([]float32, 0, 12)
	for c := 0; c < 3; c++ {
		for h := 0; h < 2; h++ {
			for w := 0; w < 2; w++ {
				v := float32(c*10 + h*2 + w)
				packed.Set(0, c, h, w, v)
				want = append(want, v)
			}
		}
	}
	wire := EncodeTensor("x", packed)
	if len(wire.Data) != 12 {
		t.Fatalf("wire data has %d elements (padding leaked?)", len(wire.Data))
	}
	for i, v := range wire.Data {
		if v != want[i] {
			t.Fatalf("elem %d = %v, want %v", i, v, want[i])
		}
	}
}

func TestDecodeTensorErrors(t *testing.T) {
	cases := []struct {
		label string
		in    InferTensor
	}{
		{"empty name", InferTensor{Datatype: DatatypeFP32, Shape: []int{1}, Data: []float32{1}}},
		{"bad datatype", InferTensor{Name: "x", Datatype: "INT64", Shape: []int{1}, Data: []float32{1}}},
		{"no shape", InferTensor{Name: "x", Datatype: DatatypeFP32, Data: []float32{1}}},
		{"non-positive dim", InferTensor{Name: "x", Datatype: DatatypeFP32, Shape: []int{1, -4}, Data: []float32{1}}},
		{"short data", InferTensor{Name: "x", Datatype: DatatypeFP32, Shape: []int{2, 2}, Data: []float32{1, 2, 3}}},
		{"long data", InferTensor{Name: "x", Datatype: DatatypeFP32, Shape: []int{2}, Data: []float32{1, 2, 3}}},
	}
	for _, c := range cases {
		if _, err := c.in.DecodeTensor(); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", c.label, err)
		}
	}
}

func TestDecodeInputsErrors(t *testing.T) {
	empty := &InferRequest{}
	if _, err := empty.DecodeInputs(); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("no inputs: %v, want ErrBadRequest", err)
	}
	one := InferTensor{Name: "data", Datatype: DatatypeFP32, Shape: []int{1}, Data: []float32{1}}
	dup := &InferRequest{Inputs: []InferTensor{one, one}}
	if _, err := dup.DecodeInputs(); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("duplicate input: %v, want ErrBadRequest", err)
	}
}

func TestEncodeOutputsSelection(t *testing.T) {
	outs := map[string]*mnn.Tensor{
		"a": tensor.FromData([]float32{1}, 1),
		"b": tensor.FromData([]float32{2}, 1),
	}
	req := &InferRequest{ID: "q1", Outputs: []RequestedOutput{{Name: "b"}}}
	resp, err := req.EncodeOutputs("m", []string{"a", "b"}, outs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != "q1" || len(resp.Outputs) != 1 || resp.Outputs[0].Name != "b" {
		t.Fatalf("selection response = %+v", resp)
	}
	all, err := (&InferRequest{}).EncodeOutputs("m", []string{"b", "a"}, outs)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Outputs) != 2 || all.Outputs[0].Name != "b" || all.Outputs[1].Name != "a" {
		t.Fatalf("default response not in declared order: %+v", all.Outputs)
	}
	bad := &InferRequest{Outputs: []RequestedOutput{{Name: "nope"}}}
	if _, err := bad.EncodeOutputs("m", []string{"a", "b"}, outs); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown output: %v, want ErrBadRequest", err)
	}
}

func TestErrorResponseBody(t *testing.T) {
	blob, err := json.Marshal(ErrorResponse{Error: "serve: model not found: \"x\""})
	if err != nil {
		t.Fatal(err)
	}
	var back ErrorResponse
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Error == "" {
		t.Fatal("error body lost its message")
	}
}
