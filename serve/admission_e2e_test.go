package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"mnn"
	"mnn/internal/metrics"
)

// tryInferWithHeaders is tryInferOverHTTP plus request headers and the
// response headers, for the admission tests (Retry-After, priorities,
// deadlines).
func tryInferWithHeaders(base, model string, in *mnn.Tensor, hdrs map[string]string) (map[string]*mnn.Tensor, int, []byte, http.Header, error) {
	req := InferRequest{Inputs: []InferTensor{EncodeTensor("data", in)}}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, nil, nil, err
	}
	hreq, err := http.NewRequest(http.MethodPost, base+"/v2/models/"+model+"/infer", bytes.NewReader(body))
	if err != nil {
		return nil, 0, nil, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdrs {
		hreq.Header.Set(k, v)
	}
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return nil, 0, nil, nil, err
	}
	defer hresp.Body.Close()
	blob, err := io.ReadAll(hresp.Body)
	if err != nil {
		return nil, hresp.StatusCode, nil, hresp.Header, err
	}
	if hresp.StatusCode != http.StatusOK {
		return nil, hresp.StatusCode, blob, hresp.Header, nil
	}
	var resp InferResponse
	if err := json.Unmarshal(blob, &resp); err != nil {
		return nil, hresp.StatusCode, blob, hresp.Header, fmt.Errorf("infer response: %v\n%s", err, blob)
	}
	out := make(map[string]*mnn.Tensor, len(resp.Outputs))
	for _, it := range resp.Outputs {
		dec, err := it.DecodeTensor()
		if err != nil {
			return nil, hresp.StatusCode, blob, hresp.Header, fmt.Errorf("decoding output %q: %v", it.Name, err)
		}
		out[it.Name] = dec
	}
	return out, hresp.StatusCode, blob, hresp.Header, nil
}

// TestOverloadShedsWithRetryAfter is the overload acceptance scenario: one
// model with concurrency 1 and a 2-deep queue is flooded well past capacity
// while a second model receives light traffic. The flood must split into
// admitted requests (200, bitwise identical to the unbatched engine) and
// fast 429 rejections carrying Retry-After; the quiet model's latency must
// stay within budget; and the whole flood must resolve in bounded time —
// rejections cannot wait out the backlog.
func TestOverloadShedsWithRetryAfter(t *testing.T) {
	// The hot model must be slow enough (tens of ms) that a burst genuinely
	// overlaps — a sub-millisecond model drains faster than goroutines can
	// pile up and nothing ever queues. mobilenet-v1 at this size serves in
	// ~20ms on one thread.
	shape := []int{1, 3, 64, 64}
	if raceEnabled {
		shape = []int{1, 3, 32, 32}
	}
	reg := NewRegistry()
	err := reg.Load("hot", ModelConfig{
		Model: "mobilenet-v1",
		Options: []mnn.Option{
			mnn.WithPoolSize(1), mnn.WithThreads(1),
			mnn.WithInputShapes(map[string][]int{"data": shape}),
		},
		Admission: AdmissionConfig{Queue: 2, Concurrency: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Load("calm", ModelConfig{
		Model:   tinyGraph(t),
		Options: []mnn.Option{mnn.WithPoolSize(1), mnn.WithThreads(1)},
	}); err != nil {
		t.Fatal(err)
	}
	base, _ := startServer(t, reg)
	hot, _ := reg.Get("hot")

	flood := 16
	if raceEnabled {
		flood = 12
	}
	inputs := make([]*mnn.Tensor, flood)
	want := make([]map[string]*mnn.Tensor, flood)
	for i := range inputs {
		inputs[i] = randomInput(uint64(300+i), shape)
		w, err := hot.Engine().Infer(context.Background(), map[string]*mnn.Tensor{"data": inputs[i]})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}

	type result struct {
		out     map[string]*mnn.Tensor
		code    int
		hdr     http.Header
		err     error
		elapsed time.Duration
	}
	results := make([]result, flood)
	var calmLat []time.Duration
	var calmMu sync.Mutex
	var wg sync.WaitGroup
	stopCalm := make(chan struct{})
	calmIn := randomInput(999, []int{1, 3, 16, 16})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopCalm:
				return
			default:
			}
			t0 := time.Now()
			_, code, blob, err := tryInferOverHTTP(base, "calm", calmIn)
			if err != nil || code != http.StatusOK {
				t.Errorf("calm model: %d %v %s", code, err, blob)
				return
			}
			calmMu.Lock()
			calmLat = append(calmLat, time.Since(t0))
			calmMu.Unlock()
		}
	}()

	floodStart := time.Now()
	var floodWG sync.WaitGroup
	for i := 0; i < flood; i++ {
		floodWG.Add(1)
		go func(i int) {
			defer floodWG.Done()
			t0 := time.Now()
			out, code, _, hdr, err := tryInferWithHeaders(base, "hot", inputs[i], nil)
			results[i] = result{out: out, code: code, hdr: hdr, err: err, elapsed: time.Since(t0)}
		}(i)
	}
	floodWG.Wait()
	floodWall := time.Since(floodStart)
	close(stopCalm)
	wg.Wait()

	var ok200, shed429 int
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("flood request %d: %v", i, r.err)
		}
		switch r.code {
		case http.StatusOK:
			ok200++
			assertIdentical(t, fmt.Sprintf("admitted flood req %d", i), r.out, want[i])
		case http.StatusTooManyRequests:
			shed429++
			ra := r.hdr.Get("Retry-After")
			if ra == "" {
				t.Fatalf("flood request %d: 429 without Retry-After", i)
			}
			if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
				t.Fatalf("flood request %d: Retry-After %q is not a positive integer", i, ra)
			}
		default:
			t.Fatalf("flood request %d: status %d", i, r.code)
		}
	}
	// Concurrency 1 + queue 2 against a simultaneous flood: at most
	// 1+2 requests can be in the system, so most of the flood must shed.
	if shed429 == 0 {
		t.Fatalf("flood of %d against queue 2: no 429s (got %d×200)", flood, ok200)
	}
	if ok200 == 0 {
		t.Fatalf("flood of %d: everything shed, nothing admitted", flood)
	}
	t.Logf("flood: %d admitted, %d shed in %v", ok200, shed429, floodWall)

	// Rejections are immediate, so the flood resolves in roughly the time
	// the admitted backlog (concurrency 1 + queue 2) takes to drain — not
	// flood × service time. The bound is generous for CI noise yet far
	// below a server that made every rejected request wait its turn.
	if maxWall := 15 * time.Second; floodWall > maxWall {
		t.Fatalf("flood took %v, want bounded by backlog drain (%v)", floodWall, maxWall)
	}

	// The calm model shared the server but not the hot model's queue: its
	// p99 stays within a budget that a blocked server would blow through.
	calmMu.Lock()
	defer calmMu.Unlock()
	if len(calmLat) == 0 {
		t.Fatal("calm model made no progress during the flood")
	}
	sort.Slice(calmLat, func(i, j int) bool { return calmLat[i] < calmLat[j] })
	p99 := calmLat[(99*len(calmLat)+99)/100-1]
	if budget := 2 * time.Second; p99 > budget {
		t.Fatalf("calm model p99 %v over budget %v during flood", p99, budget)
	}
}

// TestDeadlinePropagation pins the client-deadline plumbing: a model
// without admission control must still see X-Request-Timeout and
// X-Request-Deadline in its inference context, and malformed values are
// 400s rather than silently ignored deadlines.
func TestDeadlinePropagation(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Load("tiny", ModelConfig{Model: tinyGraph(t)}); err != nil {
		t.Fatal(err)
	}
	base, _ := startServer(t, reg)
	in := randomInput(5, []int{1, 3, 16, 16})

	// An expired relative timeout cancels the inference (503, the server's
	// mapping of mnn.ErrCancelled), proving the header reached the context.
	_, code, blob, _, err := tryInferWithHeaders(base, "tiny", in, map[string]string{
		"X-Request-Timeout": "1ns",
	})
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusServiceUnavailable {
		t.Fatalf("timeout 1ns: status %d %s, want 503 (cancelled)", code, blob)
	}

	// Same for an absolute deadline in the past.
	_, code, blob, _, err = tryInferWithHeaders(base, "tiny", in, map[string]string{
		"X-Request-Deadline": time.Now().Add(-time.Second).Format(time.RFC3339Nano),
	})
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusServiceUnavailable {
		t.Fatalf("past deadline: status %d %s, want 503 (cancelled)", code, blob)
	}

	// Generous deadlines don't interfere.
	_, code, blob, _, err = tryInferWithHeaders(base, "tiny", in, map[string]string{
		"X-Request-Timeout":  "30s",
		"X-Request-Deadline": time.Now().Add(30 * time.Second).Format(time.RFC3339Nano),
	})
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK {
		t.Fatalf("generous deadline: status %d %s, want 200", code, blob)
	}

	// Malformed values are rejected, not ignored.
	for hdr, val := range map[string]string{
		"X-Request-Timeout":  "soon",
		"X-Request-Deadline": "tomorrow",
		"X-Request-Priority": "urgent",
	} {
		_, code, blob, _, err := tryInferWithHeaders(base, "tiny", in, map[string]string{hdr: val})
		if err != nil {
			t.Fatal(err)
		}
		if code != http.StatusBadRequest {
			t.Fatalf("%s: %s: status %d %s, want 400", hdr, val, code, blob)
		}
	}
	// A negative timeout is invalid too.
	_, code, blob, _, err = tryInferWithHeaders(base, "tiny", in, map[string]string{
		"X-Request-Timeout": "-5s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusBadRequest {
		t.Fatalf("negative timeout: status %d %s, want 400", code, blob)
	}
}

// TestDegradePrecisionMetadata pins graceful degradation end-to-end: under
// sustained overload a degrade=int8 model switches to its quantized engine
// and responses say so ("precision": "int8"); when pressure clears it
// routes back to fp32.
func TestDegradePrecisionMetadata(t *testing.T) {
	shape := []int{1, 3, 64, 64}
	if raceEnabled {
		shape = []int{1, 3, 32, 32}
	}
	reg := NewRegistry()
	err := reg.Load("deg", ModelConfig{
		Model: "mobilenet-v1",
		Options: []mnn.Option{
			mnn.WithPoolSize(1), mnn.WithThreads(1),
			mnn.WithInputShapes(map[string][]int{"data": shape}),
		},
		Admission: AdmissionConfig{
			Queue: 1, Concurrency: 1,
			Degrade: "int8", DegradeThreshold: 0.05,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := startServer(t, reg)
	m, _ := reg.Get("deg")
	in := randomInput(77, shape)

	// Before any overload, responses carry the loaded precision.
	_, code, blob, _, err := tryInferWithHeaders(base, "deg", in, nil)
	if err != nil || code != http.StatusOK {
		t.Fatalf("pre-overload infer: %d %v %s", code, err, blob)
	}
	var resp InferResponse
	if err := json.Unmarshal(blob, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Precision != "fp32" {
		t.Fatalf("pre-overload precision %q, want fp32", resp.Precision)
	}

	// Flood in waves until the shed-rate EWMA trips the degrade threshold.
	deadline := time.Now().Add(30 * time.Second)
	for !m.Degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("model never degraded; stats %+v", m.AdmissionStats())
		}
		var wg sync.WaitGroup
		for i := 0; i < 24; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, _, _, _, _ = tryInferWithHeaders(base, "deg", in, nil)
			}()
		}
		wg.Wait()
	}

	// An admitted request while degraded runs on the int8 engine and says so.
	_, code, blob, _, err = tryInferWithHeaders(base, "deg", in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK {
		t.Fatalf("degraded infer: status %d %s (queue should be idle between waves)", code, blob)
	}
	resp = InferResponse{}
	if err := json.Unmarshal(blob, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Precision != "int8" {
		t.Fatalf("degraded precision %q, want int8", resp.Precision)
	}

	// Sustained calm traffic decays the shed EWMA below the hysteresis
	// floor; the model routes back and responses return to fp32.
	recovered := false
	for i := 0; i < 500 && !recovered; i++ {
		_, code, blob, _, err := tryInferWithHeaders(base, "deg", in, nil)
		if err != nil || code != http.StatusOK {
			t.Fatalf("recovery infer %d: %d %v %s", i, code, err, blob)
		}
		resp = InferResponse{}
		if err := json.Unmarshal(blob, &resp); err != nil {
			t.Fatal(err)
		}
		recovered = resp.Precision == "fp32"
	}
	if !recovered {
		t.Fatalf("model never routed back to fp32; stats %+v", m.AdmissionStats())
	}
	if m.Degraded() {
		t.Fatal("Degraded() still true after responses returned to fp32")
	}
	st := m.AdmissionStats()
	if st.DegradeTransitions < 2 {
		t.Fatalf("degrade transitions %d, want ≥ 2 (on and off)", st.DegradeTransitions)
	}
}

// TestMetricsEndpoint drives mixed traffic (successes, sheds, batched
// requests) and asserts GET /metrics serves valid Prometheus text with the
// families the dashboards and the CI smoke job rely on.
func TestMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	err := reg.Load("mx", ModelConfig{
		Model:     tinyGraph(t),
		Options:   []mnn.Option{mnn.WithPoolSize(1), mnn.WithThreads(1)},
		Batch:     BatchConfig{MaxBatch: 2, MaxLatency: 2 * time.Millisecond},
		Admission: AdmissionConfig{Queue: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := startServer(t, reg)
	in := randomInput(42, []int{1, 3, 16, 16})

	// Successes (some batched), plus a flood to force at least one shed.
	for i := 0; i < 3; i++ {
		if _, code, blob := inferOverHTTP(t, base, "mx", in); code != http.StatusOK {
			t.Fatalf("infer %d: %d %s", i, code, blob)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _, _ = tryInferOverHTTP(base, "mx", in)
		}()
	}
	wg.Wait()
	// And one 404 so requests_total has a non-200 code series.
	if _, code, _, _ := tryInferOverHTTP(base, "ghost", in); code != http.StatusNotFound {
		t.Fatalf("ghost infer: %d, want 404", code)
	}

	hresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", hresp.StatusCode)
	}
	if ct := hresp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	blob, err := io.ReadAll(hresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(blob)
	if err := metrics.ValidateText(text); err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v\n%s", err, text)
	}
	for _, want := range []string{
		`mnn_queue_wait_seconds_bucket{model="mx:1",le="+Inf"}`,
		`mnn_queue_wait_seconds_count{model="mx:1"}`,
		`mnn_infer_duration_seconds_bucket{model="mx:1",le="+Inf"}`,
		`mnn_requests_total{model="mx:1",code="200"}`,
		`mnn_shed_total{model="mx:1",reason="queue_full"}`,
		`mnn_shed_total{model="mx:1",reason="deadline"}`,
		`mnn_queue_depth{model="mx:1"}`,
		`mnn_queue_capacity{model="mx:1"} 2`,
		`mnn_inflight_requests{model="mx:1"}`,
		`mnn_batch_flushes_total{model="mx:1"}`,
		`mnn_batch_fill_ratio{model="mx:1"}`,
		`mnn_degraded{model="mx:1"} 0`,
	} {
		if !bytes.Contains(blob, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !bytes.Contains(blob, []byte(`# TYPE mnn_queue_wait_seconds histogram`)) {
		t.Error("/metrics missing histogram TYPE line")
	}

	// The request counter reflects the traffic above: ≥3 successes and the
	// flood's outcomes all landed somewhere.
	var reqLines int
	for _, line := range bytes.Split(blob, []byte("\n")) {
		if bytes.HasPrefix(line, []byte("mnn_requests_total{")) {
			reqLines++
		}
	}
	if reqLines == 0 {
		t.Error("no mnn_requests_total series at all")
	}
}
