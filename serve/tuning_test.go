package serve

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"mnn"
	"mnn/internal/tensor"
)

// TestTunedServingBatchedBitwise: with measured tuning and a shared cache,
// the micro-batcher's batch-prepared engine commits exactly the unbatched
// engine's algorithms (decisions are batch-invariant and resolved from the
// cache the unbatched open filled), so batched responses stay bitwise
// identical to unbatched ones — the serving invariant tuning must not break.
func TestTunedServingBatchedBitwise(t *testing.T) {
	const hw = 32
	cache := filepath.Join(t.TempDir(), "sq.tuning.json")
	shapes := map[string][]int{"data": {1, 3, hw, hw}}
	opts := []mnn.Option{mnn.WithThreads(2), mnn.WithInputShapes(shapes),
		mnn.WithTuning(mnn.TuningMeasured), mnn.WithTuningCache(cache)}

	reg := NewRegistry()
	defer reg.Close()
	if err := reg.Load("sq", ModelConfig{Model: "squeezenet-v1.1", Options: opts,
		Batch: BatchConfig{MaxBatch: 3}}); err != nil {
		t.Fatal(err)
	}
	m, err := reg.Get("sq")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Batching() {
		t.Fatal("batcher not active")
	}
	ref, err := mnn.Open("squeezenet-v1.1", opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if ts := ref.TuningStats(); ts.Measured != 0 {
		t.Fatalf("reference engine did not resolve from the shared cache: %+v", ts)
	}
	ctx := context.Background()
	for r := 0; r < 4; r++ {
		in := tensor.NewRandom(uint64(50+r), float32(r%2+1), 1, 3, hw, hw)
		got, err := m.Infer(ctx, map[string]*mnn.Tensor{"data": in})
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Infer(ctx, map[string]*mnn.Tensor{"data": in})
		if err != nil {
			t.Fatal(err)
		}
		for name, w := range want {
			gd := got[name].Data()
			for i, v := range w.Data() {
				if gd[i] != v {
					t.Fatalf("request %d output %q[%d]: batched %v != unbatched %v", r, name, i, gd[i], v)
				}
			}
		}
	}
}

// TestLoadOptionsTuning: the wire-level tuning knobs translate into engine
// options — a measured-mode model loads, serves, and persists its tuning
// cache so a reload resolves without re-measuring; a bad mode name is a
// client error.
func TestLoadOptionsTuning(t *testing.T) {
	if _, err := (LoadOptions{Tuning: "quantum"}).EngineOptions(); !errors.Is(err, ErrBadRequest) {
		t.Errorf("bad tuning mode: got %v, want ErrBadRequest", err)
	}
	// The repository HTTP API must never accept a server-side write path: a
	// client-supplied tuning cache would be an arbitrary file write.
	req := LoadRequest{Model: "squeezenet-v1.1", Options: LoadOptions{
		Tuning: "measured", TuningCache: "/etc/evil.json"}}
	if _, err := req.ModelConfig(); !errors.Is(err, ErrBadRequest) {
		t.Errorf("repository-API tuning_cache: got %v, want ErrBadRequest", err)
	}
	// Without a cache path, API-driven measured tuning is still allowed —
	// unless batching is requested, where only a shared cache (operator-side
	// configuration) keeps the two engines' algorithms identical.
	if _, err := (LoadRequest{Model: "squeezenet-v1.1",
		Options: LoadOptions{Tuning: "measured"}}).ModelConfig(); err != nil {
		t.Errorf("cacheless measured tuning over the API rejected: %v", err)
	}
	if _, err := (LoadRequest{Model: "squeezenet-v1.1", MaxBatch: 4,
		Options: LoadOptions{Tuning: "measured"}}).ModelConfig(); !errors.Is(err, ErrBadRequest) {
		t.Errorf("measured tuning with batching over the API: got %v, want ErrBadRequest", err)
	}

	cache := filepath.Join(t.TempDir(), "sq.tuning.json")
	lo := LoadOptions{
		Threads: 2, Tuning: "measured", TuningCache: cache,
		InputShapes: map[string][]int{"data": {1, 3, 32, 32}},
	}
	opts, err := lo.EngineOptions()
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	defer reg.Close()
	if err := reg.Load("sq", ModelConfig{Model: "squeezenet-v1.1", Options: opts}); err != nil {
		t.Fatal(err)
	}
	m, err := reg.Get("sq")
	if err != nil {
		t.Fatal(err)
	}
	cold := m.Engine().TuningStats()
	if cold.Measured == 0 || !cold.CacheSaved {
		t.Fatalf("measured load did not measure+persist: %+v", cold)
	}
	in := tensor.NewRandom(1, 1, 1, 3, 32, 32)
	if _, err := m.Infer(context.Background(), map[string]*mnn.Tensor{"data": in}); err != nil {
		t.Fatal(err)
	}
	// Hot-swap reload: the replacement engine must come up warm.
	if err := reg.Load("sq", ModelConfig{Model: "squeezenet-v1.1", Options: opts}); err != nil {
		t.Fatal(err)
	}
	m, err = reg.Get("sq")
	if err != nil {
		t.Fatal(err)
	}
	warm := m.Engine().TuningStats()
	if warm.Measured != 0 || warm.CacheHits != warm.Unique {
		t.Errorf("reloaded model did not resolve from the tuning cache: %+v", warm)
	}
}
