package serve

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"mnn"
)

// BatchConfig tunes the per-model dynamic micro-batcher.
type BatchConfig struct {
	// MaxBatch is the largest number of single requests coalesced into one
	// batched run (and the batch size the second engine is prepared at).
	// Values <= 1 disable batching: every request runs on the unbatched
	// engine directly.
	MaxBatch int
	// MaxLatency bounds how long the first queued request waits for the
	// batch to fill before a partial flush (default 2ms when batching is
	// enabled). Larger values trade tail latency for bigger batches.
	MaxLatency time.Duration
}

// DefaultMaxLatency is the batching window used when BatchConfig enables
// batching without choosing one.
const DefaultMaxLatency = 2 * time.Millisecond

// ModelConfig describes one model for Registry.Load.
type ModelConfig struct {
	// Model is what mnn.Open accepts: a *mnn.Graph, a built-in network name
	// or model file path, or an io.Reader of the binary format.
	Model any
	// Options configure the unbatched engine (pool size, threads, forward
	// type, prepared input shapes, …). The batched engine, when enabled,
	// reuses them with only the input shapes overridden to batch size.
	Options []mnn.Option
	// Batch enables and tunes dynamic micro-batching.
	Batch BatchConfig
}

// Model is one loaded entry of a Registry: the unbatched engine plus an
// optional micro-batcher in front of a second, batch-prepared engine.
type Model struct {
	name    string
	eng     *mnn.Engine
	batcher *batcher
}

// Registry owns named models with hot load/unload. All methods are safe for
// concurrent use; Infer traffic against other models is never blocked by a
// Load (engine preparation happens outside the lock).
type Registry struct {
	mu     sync.RWMutex
	models map[string]*Model
	closed bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]*Model)}
}

// Load opens the model's engine(s) and publishes them under name, replacing
// (and closing) any previous model with the same name — a hot swap: requests
// already inside the old engine finish, new requests see the new one.
func (r *Registry) Load(name string, cfg ModelConfig) error {
	if name == "" {
		return fmt.Errorf("%w: empty model name", ErrBadRequest)
	}
	if rdr, ok := cfg.Model.(io.Reader); ok {
		// The batcher opens the model a second time; a stream can only be
		// consumed once, so resolve it to a graph up front.
		g, err := mnn.LoadGraph(rdr)
		if err != nil {
			return fmt.Errorf("serve: load %q: %w", name, err)
		}
		cfg.Model = g
	}
	eng, err := mnn.Open(cfg.Model, cfg.Options...)
	if err != nil {
		return fmt.Errorf("serve: load %q: %w", name, err)
	}
	m := &Model{name: name, eng: eng}
	if cfg.Batch.MaxBatch > 1 {
		b, err := newBatcher(cfg, eng)
		if err != nil {
			eng.Close()
			return fmt.Errorf("serve: load %q: %w", name, err)
		}
		m.batcher = b
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		m.close()
		return ErrServerClosed
	}
	old := r.models[name]
	r.models[name] = m
	r.mu.Unlock()
	if old != nil {
		old.close()
	}
	return nil
}

// Unload removes and closes a model. In-flight inferences against it finish
// normally; later requests get ErrModelNotFound.
func (r *Registry) Unload(name string) error {
	r.mu.Lock()
	m, ok := r.models[name]
	delete(r.models, name)
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	m.close()
	return nil
}

// Get looks up a loaded model.
func (r *Registry) Get(name string) (*Model, error) {
	r.mu.RLock()
	m, ok := r.models[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	return m, nil
}

// Names lists the loaded model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.models))
	for name := range r.models {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Close unloads every model and rejects further Loads.
func (r *Registry) Close() error {
	r.mu.Lock()
	models := r.models
	r.models = make(map[string]*Model)
	r.closed = true
	r.mu.Unlock()
	for _, m := range models {
		m.close()
	}
	return nil
}

// Name returns the registry name of the model.
func (m *Model) Name() string { return m.name }

// Engine exposes the unbatched engine (e.g. for direct in-process calls).
func (m *Model) Engine() *mnn.Engine { return m.eng }

// Batching reports whether the dynamic micro-batcher is active.
func (m *Model) Batching() bool { return m.batcher != nil }

// Infer runs one logical request. With batching enabled, single-sample
// requests matching the prepared shape are coalesced into batched runs;
// everything else falls through to the unbatched engine.
func (m *Model) Infer(ctx context.Context, inputs map[string]*mnn.Tensor) (map[string]*mnn.Tensor, error) {
	if m.batcher != nil {
		return m.batcher.infer(ctx, inputs)
	}
	return m.eng.Infer(ctx, inputs)
}

// Metadata assembles the protocol metadata from the engine's declared
// inputs and outputs. Output shapes are not reported: they depend on the
// request and the engine only exposes prepared input shapes.
func (m *Model) Metadata() ModelMetadata {
	md := ModelMetadata{Name: m.name, Platform: "mnn-go", Precision: m.eng.Precision().String()}
	for _, in := range m.eng.InputNames() {
		md.Inputs = append(md.Inputs, TensorMetadata{
			Name: in, Datatype: DatatypeFP32, Shape: m.eng.InputShape(in),
		})
	}
	for _, out := range m.eng.OutputNames() {
		md.Outputs = append(md.Outputs, TensorMetadata{Name: out, Datatype: DatatypeFP32})
	}
	return md
}

// close tears down the batcher (draining its queue) before the engines.
func (m *Model) close() {
	if m.batcher != nil {
		m.batcher.close()
	}
	m.eng.Close()
}
