package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mnn"
	"mnn/internal/fault"
	"mnn/internal/metrics"
	"mnn/serve/admission"
)

// Quarantine policy defaults: a model is pulled from rotation after this
// many kernel panics and held out for the cooldown, after which the next
// request probes it half-open (one success clears the record).
const (
	DefaultQuarantineAfter    = 3
	DefaultQuarantineCooldown = 30 * time.Second
)

// DefaultVersion is the version a model loads under when none is given, so
// version-less deployments keep working unchanged: "m" and "m:1" are the
// same model.
const DefaultVersion = "1"

// SplitRef splits a model reference "name[:version]" into its parts; the
// version is empty when the reference is bare (meaning "the default
// version").
func SplitRef(ref string) (name, version string) {
	if i := strings.LastIndex(ref, ":"); i >= 0 {
		return ref[:i], ref[i+1:]
	}
	return ref, ""
}

// JoinRef builds the canonical "name:version" reference.
func JoinRef(name, version string) string { return name + ":" + version }

// compareVersions orders versions numerically when both parse as integers
// (2 < 10), lexicographically otherwise, so "latest" resolution matches what
// operators expect from numbered versions.
func compareVersions(a, b string) int {
	ai, aerr := strconv.Atoi(a)
	bi, berr := strconv.Atoi(b)
	if aerr == nil && berr == nil {
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		}
		return 0
	}
	return strings.Compare(a, b)
}

// BatchConfig tunes the per-model dynamic micro-batcher.
type BatchConfig struct {
	// MaxBatch is the largest number of single requests coalesced into one
	// batched run (and the batch size the second engine is prepared at).
	// Values <= 1 disable batching: every request runs on the unbatched
	// engine directly.
	MaxBatch int
	// MaxLatency bounds how long the first queued request waits for the
	// batch to fill before a partial flush (default 2ms when batching is
	// enabled). Larger values trade tail latency for bigger batches. A
	// request whose effective deadline cannot afford the full window cuts
	// its batch early instead.
	MaxLatency time.Duration
	// Buckets bounds how many input-shape buckets — each holding a batch-
	// prepared engine keyed by the request's shape signature — may be
	// resident at once. 0 means DefaultMaxBuckets. 1 keeps only the bucket
	// of the model's declared input shapes, so every other shape falls
	// through to the unbatched engine (the pre-bucketing behaviour).
	// Buckets past the bound are opened by evicting the least-recently-used
	// idle one; when all are busy the request falls through.
	Buckets int
}

// validate rejects inconsistent batching configuration; failures wrap
// ErrBadRequest so the repository API maps them to HTTP 400.
func (b BatchConfig) validate() error {
	if b.Buckets < 0 {
		return fmt.Errorf("%w: batch buckets %d is negative", ErrBadRequest, b.Buckets)
	}
	return nil
}

// DefaultMaxLatency is the batching window used when BatchConfig enables
// batching without choosing one.
const DefaultMaxLatency = 2 * time.Millisecond

// AdmissionConfig enables SLO-aware admission control for one model: a
// bounded request queue with priority classes, deadline-aware load shedding
// (reject-early with HTTP 429 instead of timeout-late), and optional
// graceful degradation to a cheaper engine under sustained overload.
type AdmissionConfig struct {
	// Queue is the bounded queue depth in front of the engine. 0 disables
	// admission control entirely (and the other fields must be unset).
	Queue int
	// Concurrency is how many admitted requests execute at once. 0 derives
	// it from the engine: max(pool size, micro-batch size), so batching can
	// still fill whole batches.
	Concurrency int
	// SLO is the per-model latency budget measured from arrival; requests
	// that cannot meet it given the current backlog are shed immediately.
	// 0 means only explicit client deadlines shed.
	SLO time.Duration
	// DefaultPriority classes requests that don't send X-Request-Priority
	// (zero value: normal).
	DefaultPriority admission.Priority
	// Degrade, when "int8", opens a second engine at int8 precision and
	// routes traffic to it while the shed-rate EWMA exceeds
	// DegradeThreshold (routing back below half the threshold). Responses
	// served degraded carry `"precision": "int8"`.
	Degrade string
	// DegradeThreshold is the shed-rate EWMA trigger; 0 means 0.3.
	DegradeThreshold float64
}

// DefaultDegradeThreshold is the shed-rate EWMA above which a model with
// Degrade configured switches to its degrade engine.
const DefaultDegradeThreshold = 0.3

// ModelConfig describes one model for Registry.Load.
type ModelConfig struct {
	// Model is what mnn.Open accepts: a *mnn.Graph, a built-in network name
	// or model file path, or an io.Reader of the binary format.
	Model any
	// Options configure the unbatched engine (pool size, threads, forward
	// type, prepared input shapes, …). The batched engine, when enabled,
	// reuses them with only the input shapes overridden to batch size.
	Options []mnn.Option
	// Batch enables and tunes dynamic micro-batching.
	Batch BatchConfig
	// Admission enables and tunes SLO-aware admission control.
	Admission AdmissionConfig
	// Lazy defers opening the engines until the first request and makes the
	// model evictable under memory-budget pressure. A registry with a
	// memory budget treats every subsequent Load as lazy regardless.
	Lazy bool
}

// engines is the snapshot of one model's execution resources a request
// holds for its lifetime. Acquire under Model.lifeMu keeps it consistent
// with the lazy load/evict lifecycle: an evicted model can never close the
// engines a request already holds (the in-flight refcount blocks eviction).
type engines struct {
	eng        *mnn.Engine
	batcher    *batcher
	degradeEng *mnn.Engine
	ctrl       *admission.Controller
}

// Model is one versioned entry of a Registry: the unbatched engine plus an
// optional micro-batcher in front of a second, batch-prepared engine, an
// optional admission controller gating both, and an optional degrade engine
// for overload fallback. Lazy models open their engines on first request
// and may be evicted (engines closed, configuration kept) under memory
// pressure; the admission controller survives evictions so queue state and
// shed-rate EWMAs are continuous across reloads.
type Model struct {
	reg        *Registry
	name       string
	version    string
	cfg        ModelConfig
	lazy       bool
	defaultPri admission.Priority
	mm         *modelMetrics

	// lifeMu guards every lifecycle transition (load, evict, remove) and
	// the engine fields below. Requests snapshot the engines under it via
	// acquire; lifecycle transitions re-check the refcount under it, so a
	// request can never observe engines mid-teardown.
	lifeMu     sync.Mutex
	eng        *mnn.Engine
	batcher    *batcher
	degradeEng *mnn.Engine
	loaded     bool
	removed    bool
	bytes      int64
	// bytesApprox mirrors bytes for lock-free metric scrapes.
	bytesApprox int64

	// ctrl is created on first load and kept across evictions.
	ctrl atomic.Pointer[admission.Controller]

	// refs counts requests currently holding the engines; eviction skips
	// busy models. lastUsed drives LRU victim selection.
	refs     atomic.Int64
	lastUsed atomic.Int64 // unix nanos
	isLoaded atomic.Bool  // lock-free mirror of loaded for victim scans

	// Crash-containment record: panicCount accumulates kernel panics since
	// the last clean probe; quarantinedUntil (unix nanos, 0 = healthy)
	// fails requests fast while set; quarantineN counts quarantine
	// episodes for metrics and tests.
	panicCount       atomic.Int64
	quarantinedUntil atomic.Int64
	quarantineN      atomic.Int64

	// outputNames and tuning are cached at (re)load so handlers and tests
	// can read them without holding the lifecycle lock.
	outMu       sync.Mutex
	outputNames []string
	tuning      mnn.TuningStats
}

// Registry owns named, versioned models with hot load/unload. All methods
// are safe for concurrent use; Infer traffic against other models is never
// blocked by a Load (engine preparation happens outside the registry lock).
//
// With a memory budget set (SetMemoryBudget), models load lazily: Load
// registers the configuration, the first request opens the engines, and
// idle models are evicted least-recently-used when the byte-accounted
// resident set exceeds the budget. A warm tuning cache (mnn.WithTuningCache)
// makes reloads cheap — a cached Open runs no micro-benchmarks.
type Registry struct {
	mu       sync.Mutex
	models   map[string]map[string]*Model // name → version → model
	pinned   map[string]string            // name → pinned default version
	closed   bool
	budget   int64
	resident int64
	metrics  *serverMetrics

	// fault is the shared injector engines opened by this registry also
	// use, so count= budgets in a chaos plan are process-global.
	fault atomic.Pointer[fault.Injector]
	// qAfter / qCooldownNs are the quarantine policy (see
	// SetQuarantinePolicy); qAfter <= 0 disables quarantining.
	qAfter      atomic.Int64
	qCooldownNs atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{
		models:  make(map[string]map[string]*Model),
		pinned:  make(map[string]string),
		metrics: newServerMetrics(),
	}
	r.qAfter.Store(DefaultQuarantineAfter)
	r.qCooldownNs.Store(int64(DefaultQuarantineCooldown))
	return r
}

// SetFaultInjector arms deterministic fault injection (mnnserve -chaos):
// the registry.load site fires in its own loads, and every engine it opens
// afterwards shares the injector, so one plan's count= budgets span the
// whole process. A nil injector (the default) is a no-op.
func (r *Registry) SetFaultInjector(in *fault.Injector) { r.fault.Store(in) }

// FaultInjector returns the armed injector (nil when chaos is off).
func (r *Registry) FaultInjector() *fault.Injector { return r.fault.Load() }

// SetQuarantinePolicy tunes crash containment: a model that throws `after`
// kernel panics is quarantined — requests fail fast with
// ErrModelQuarantined (HTTP 503 + X-Model-Quarantined) — for `cooldown`,
// then the next request probes it half-open; a clean probe restores it.
// after <= 0 disables quarantining. The policy applies to all models.
func (r *Registry) SetQuarantinePolicy(after int, cooldown time.Duration) {
	r.qAfter.Store(int64(after))
	r.qCooldownNs.Store(int64(cooldown))
}

// Metrics exposes the registry's metric families (what the server renders
// on /metrics), e.g. for mounting into an existing metrics pipeline.
func (r *Registry) Metrics() *metrics.Registry { return r.metrics.reg }

// SetMemoryBudget bounds the bytes of resident (opened) engines. Models
// loaded after the budget is set open lazily on first request and are
// evicted least-recently-used while the resident set exceeds the budget;
// models busy with requests are never evicted, so a single model larger
// than the budget still serves (the budget is then overshot, not violated
// by refusing traffic). 0 disables the budget (the default: every Load
// opens eagerly and nothing is evicted).
func (r *Registry) SetMemoryBudget(bytes int64) {
	r.mu.Lock()
	r.budget = bytes
	r.mu.Unlock()
	r.metrics.memoryBudget.Set(float64(bytes))
	r.enforceBudget()
}

// MemoryBudget returns the configured budget (0 = unlimited).
func (r *Registry) MemoryBudget() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.budget
}

// ResidentBytes returns the byte-accounted size of all currently opened
// engines (weights + planned arenas across session pools).
func (r *Registry) ResidentBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resident
}

// refreshMetrics pulls scrape-time gauges (queue depth, in-flight, degrade
// state, residency) from every model.
func (r *Registry) refreshMetrics() {
	r.mu.Lock()
	models := make([]*Model, 0, len(r.models))
	for _, vs := range r.models {
		for _, m := range vs {
			models = append(models, m)
		}
	}
	r.mu.Unlock()
	for _, m := range models {
		m.mm.refresh(m.ctrl.Load())
		m.mm.onQuarantineChange(m.Quarantined())
		if m.isLoaded.Load() {
			m.mm.residentBytes.Set(float64(atomic.LoadInt64(&m.bytesApprox)))
		} else {
			m.mm.residentBytes.Set(0)
		}
		if m.cfg.Batch.MaxBatch > 1 {
			// Zero stats while the batcher isn't resident clear the
			// per-bucket series instead of freezing them at stale values.
			bs, _ := m.batcherStats()
			m.mm.refreshBuckets(bs)
		}
	}
}

// validate rejects inconsistent admission configuration; every failure
// wraps ErrBadRequest so the repository API maps it to HTTP 400.
func (a AdmissionConfig) validate() error {
	if a.Queue < 0 {
		return fmt.Errorf("%w: admission queue depth %d is negative", ErrBadRequest, a.Queue)
	}
	if a.Degrade != "" && a.Degrade != "int8" {
		return fmt.Errorf("%w: unknown degrade mode %q (want \"int8\")", ErrBadRequest, a.Degrade)
	}
	if a.Queue == 0 && (a.SLO > 0 || a.Degrade != "" || a.Concurrency > 0 || a.DegradeThreshold > 0) {
		return fmt.Errorf("%w: admission options (slo, degrade, concurrency) require a queue depth > 0", ErrBadRequest)
	}
	return nil
}

// Load registers (and, unless lazy, opens) the model under ref
// ("name[:version]"; a bare name means version 1), replacing and closing
// any previous model with the same name and version — a hot swap: requests
// already inside the old engine finish, new requests see the new one.
func (r *Registry) Load(ref string, cfg ModelConfig) error {
	name, version := SplitRef(ref)
	if name == "" {
		return fmt.Errorf("%w: empty model name", ErrBadRequest)
	}
	if version == "" {
		version = DefaultVersion
	}
	if err := cfg.Admission.validate(); err != nil {
		return fmt.Errorf("serve: load %q: %w", ref, err)
	}
	if err := cfg.Batch.validate(); err != nil {
		return fmt.Errorf("serve: load %q: %w", ref, err)
	}
	if rdr, ok := cfg.Model.(io.Reader); ok {
		// The batcher (and any lazy reload) opens the model again; a stream
		// can only be consumed once, so resolve it to a graph up front.
		g, err := mnn.LoadGraph(rdr)
		if err != nil {
			return fmt.Errorf("serve: load %q: %w", ref, err)
		}
		cfg.Model = g
	}
	m := &Model{
		reg: r, name: name, version: version, cfg: cfg,
		lazy:       cfg.Lazy || r.MemoryBudget() > 0,
		defaultPri: cfg.Admission.DefaultPriority,
		mm:         r.metrics.forModel(JoinRef(name, version), cfg.Admission.Queue, cfg.Batch.MaxBatch),
	}
	if !m.lazy {
		m.lifeMu.Lock()
		err := m.loadLocked()
		m.lifeMu.Unlock()
		if err != nil {
			return err
		}
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		m.close()
		return ErrServerClosed
	}
	vs := r.models[name]
	if vs == nil {
		vs = make(map[string]*Model)
		r.models[name] = vs
	}
	old := vs[version]
	vs[version] = m
	r.mu.Unlock()
	if old != nil {
		old.close()
	}
	r.enforceBudget()
	return nil
}

// SetDefault pins the version a bare "name" reference resolves to. Without
// a pin the highest loaded version wins.
func (r *Registry) SetDefault(name, version string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[name][version]; !ok {
		return fmt.Errorf("%w: %q", ErrModelNotFound, JoinRef(name, version))
	}
	r.pinned[name] = version
	return nil
}

// defaultVersionLocked resolves the default version of name: the pinned
// version when set and still loaded, the highest loaded version otherwise.
func (r *Registry) defaultVersionLocked(name string) string {
	vs := r.models[name]
	if len(vs) == 0 {
		return ""
	}
	if p, ok := r.pinned[name]; ok {
		if _, live := vs[p]; live {
			return p
		}
	}
	best := ""
	for v := range vs {
		if best == "" || compareVersions(v, best) > 0 {
			best = v
		}
	}
	return best
}

// Unload removes and closes one model version (the default version for a
// bare name). In-flight inferences against it finish normally; later
// requests get ErrModelNotFound.
func (r *Registry) Unload(ref string) error {
	name, version := SplitRef(ref)
	r.mu.Lock()
	if version == "" {
		version = r.defaultVersionLocked(name)
	}
	m := r.models[name][version]
	if m != nil {
		delete(r.models[name], version)
		if len(r.models[name]) == 0 {
			delete(r.models, name)
			delete(r.pinned, name)
		} else if r.pinned[name] == version {
			delete(r.pinned, name)
		}
	}
	r.mu.Unlock()
	if m == nil {
		return fmt.Errorf("%w: %q", ErrModelNotFound, ref)
	}
	m.close()
	return nil
}

// Get looks up a model by reference; a bare name resolves the default
// version. Lazy models are returned whether or not their engines are
// currently resident — the first request loads them.
func (r *Registry) Get(ref string) (*Model, error) {
	name, version := SplitRef(ref)
	r.mu.Lock()
	if version == "" {
		version = r.defaultVersionLocked(name)
	}
	m := r.models[name][version]
	r.mu.Unlock()
	if m == nil {
		return nil, fmt.Errorf("%w: %q", ErrModelNotFound, ref)
	}
	return m, nil
}

// Names lists the loaded model names (version-less), sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.models))
	for name := range r.models {
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// Refs lists every loaded "name:version" reference, sorted.
func (r *Registry) Refs() []string {
	r.mu.Lock()
	refs := make([]string, 0, len(r.models))
	for name, vs := range r.models {
		for v := range vs {
			refs = append(refs, JoinRef(name, v))
		}
	}
	r.mu.Unlock()
	sort.Strings(refs)
	return refs
}

// Versions lists the loaded versions of one model, sorted in version order.
func (r *Registry) Versions(name string) []string {
	r.mu.Lock()
	vs := make([]string, 0, len(r.models[name]))
	for v := range r.models[name] {
		vs = append(vs, v)
	}
	r.mu.Unlock()
	sort.Slice(vs, func(i, j int) bool { return compareVersions(vs[i], vs[j]) < 0 })
	return vs
}

// Close unloads every model and rejects further Loads.
func (r *Registry) Close() error {
	r.mu.Lock()
	models := r.models
	r.models = make(map[string]map[string]*Model)
	r.pinned = make(map[string]string)
	r.closed = true
	r.mu.Unlock()
	for _, vs := range models {
		for _, m := range vs {
			m.close()
		}
	}
	return nil
}

// enforceBudget evicts idle lazy models least-recently-used until the
// resident set fits the budget. Models with in-flight requests (or eagerly
// loaded ones) are never evicted; when everything over budget is busy the
// overshoot is tolerated until traffic drains.
func (r *Registry) enforceBudget() {
	skip := make(map[*Model]bool)
	for {
		r.mu.Lock()
		if r.budget <= 0 || r.resident <= r.budget {
			r.mu.Unlock()
			return
		}
		var victim *Model
		var oldest int64
		for _, vs := range r.models {
			for _, m := range vs {
				if skip[m] || !m.lazy || !m.isLoaded.Load() || m.refs.Load() > 0 {
					continue
				}
				if lu := m.lastUsed.Load(); victim == nil || lu < oldest {
					victim, oldest = m, lu
				}
			}
		}
		r.mu.Unlock()
		if victim == nil {
			return
		}
		if !victim.evict() {
			skip[victim] = true
		}
	}
}

// noteResident adjusts the registry's resident-byte accounting.
func (r *Registry) noteResident(delta int64) {
	r.mu.Lock()
	r.resident += delta
	total := r.resident
	r.mu.Unlock()
	r.metrics.residentTotal.Set(float64(total))
}

// Name returns the registry name of the model (without the version).
func (m *Model) Name() string { return m.name }

// Version returns the model's version.
func (m *Model) Version() string { return m.version }

// Ref returns the canonical "name:version" reference.
func (m *Model) Ref() string { return JoinRef(m.name, m.version) }

// Lazy reports whether the model participates in the lazy-load/evict
// lifecycle.
func (m *Model) Lazy() bool { return m.lazy }

// Loaded reports whether the model's engines are currently resident.
func (m *Model) Loaded() bool { return m.isLoaded.Load() }

// Engine exposes the unbatched engine (e.g. for direct in-process calls).
// It is nil while a lazy model is not resident.
func (m *Model) Engine() *mnn.Engine {
	m.lifeMu.Lock()
	defer m.lifeMu.Unlock()
	return m.eng
}

// ResidentBytes is the byte-accounted size of the model's resident engines
// (0 while evicted or not yet loaded).
func (m *Model) ResidentBytes() int64 {
	m.lifeMu.Lock()
	defer m.lifeMu.Unlock()
	return m.bytes
}

// TuningStats reports the kernel-search summary of the most recent engine
// load (zero value before the first load). After a reload against a warm
// tuning cache, Measured is 0 and CacheHits covers every signature.
func (m *Model) TuningStats() mnn.TuningStats {
	m.outMu.Lock()
	defer m.outMu.Unlock()
	return m.tuning
}

// OutputNames lists the model's declared outputs (cached at first load,
// stable across evictions; nil before a lazy model's first load).
func (m *Model) OutputNames() []string {
	m.outMu.Lock()
	defer m.outMu.Unlock()
	return append([]string(nil), m.outputNames...)
}

// Batching reports whether the dynamic micro-batcher is configured.
func (m *Model) Batching() bool { return m.cfg.Batch.MaxBatch > 1 }

// Admission reports whether admission control is configured.
func (m *Model) Admission() bool { return m.cfg.Admission.Queue > 0 }

// AdmissionStats snapshots the admission controller (zero Stats without
// admission control or before a lazy model's first load).
func (m *Model) AdmissionStats() admission.Stats {
	c := m.ctrl.Load()
	if c == nil {
		return admission.Stats{}
	}
	return c.Stats()
}

// Degraded reports whether the model is currently routing to its degrade
// engine.
func (m *Model) Degraded() bool {
	c := m.ctrl.Load()
	return c != nil && m.cfg.Admission.Degrade != "" && c.Degraded()
}

// DefaultPriority is the class for requests that don't choose one.
func (m *Model) DefaultPriority() admission.Priority { return m.defaultPri }

// QuarantinedError is the typed form of ErrModelQuarantined; Until lets
// the server compute a Retry-After for clients and the mesh router.
type QuarantinedError struct {
	Ref   string
	Until time.Time
}

func (e *QuarantinedError) Error() string {
	return fmt.Sprintf("serve: model %q quarantined after repeated kernel panics (until %s)",
		e.Ref, e.Until.Format(time.RFC3339))
}

func (e *QuarantinedError) Unwrap() error { return ErrModelQuarantined }

// Quarantined reports whether the model is currently held out of rotation
// (without clearing an expired quarantine — that happens on the next
// request's half-open probe).
func (m *Model) Quarantined() bool {
	until := m.quarantinedUntil.Load()
	return until != 0 && time.Now().UnixNano() < until
}

// KernelPanics is the count of contained kernel panics since the last
// clean half-open probe.
func (m *Model) KernelPanics() int64 { return m.panicCount.Load() }

// Quarantines counts quarantine episodes over the model's lifetime.
func (m *Model) Quarantines() int64 { return m.quarantineN.Load() }

// quarantineGate fails a request fast while the model is quarantined.
// After the cooldown it lets exactly the callers through (half-open): the
// quarantine record stays until a probe finishes cleanly, so a model that
// still panics re-quarantines immediately on the next panic.
func (m *Model) quarantineGate() error {
	until := m.quarantinedUntil.Load()
	if until == 0 {
		return nil
	}
	now := time.Now().UnixNano()
	if now < until {
		return &QuarantinedError{Ref: m.Ref(), Until: time.Unix(0, until)}
	}
	// Cooldown over: clear the window so probes flow, keep panicCount so
	// one more panic (count already ≥ after) re-quarantines instantly.
	if m.quarantinedUntil.CompareAndSwap(until, 0) {
		m.mm.onQuarantineChange(false)
	}
	return nil
}

// noteInferOutcome updates the crash-containment record after a request:
// a contained kernel panic counts toward quarantine; a clean inference
// wipes the record (closing any half-open probe window).
func (m *Model) noteInferOutcome(err error) {
	if err == nil {
		if m.panicCount.Load() != 0 {
			m.panicCount.Store(0)
		}
		return
	}
	if !errors.Is(err, mnn.ErrKernelPanic) {
		return
	}
	m.mm.onKernelPanic()
	n := m.panicCount.Add(1)
	after := m.reg.qAfter.Load()
	if after <= 0 || n < after {
		return
	}
	until := time.Now().Add(time.Duration(m.reg.qCooldownNs.Load())).UnixNano()
	if m.quarantinedUntil.CompareAndSwap(0, until) {
		m.quarantineN.Add(1)
		m.mm.onQuarantine()
		m.mm.onQuarantineChange(true)
	}
}

// loadLocked opens the model's engines (lifeMu held). The admission
// controller is created once and survives later evictions.
//
// Loading is atomic: every failure path — including the injected
// registry.load faults — leaves the model exactly as it was (no engine
// leaked, no state mutated), so a failed lazy load is retried cleanly by
// the next request.
func (m *Model) loadLocked() error {
	cfg := m.cfg
	fi := m.reg.fault.Load()
	if fi != nil {
		// The opened engines share the registry's injector so one chaos
		// plan spans load-time and infer-time sites with global budgets.
		cfg.Options = append(append([]mnn.Option(nil), cfg.Options...),
			mnn.WithFaultInjector(fi))
	}
	// "pre:" fires before any resource exists, "mid:" after the engines are
	// open — the window where a non-atomic load would leak or half-commit.
	if o := fi.Hit(fault.SiteRegistryLoad, "pre:"+m.Ref()); o != nil {
		if err := o.Apply(); err != nil {
			return fmt.Errorf("serve: load %q: %w", m.Ref(), err)
		}
	}
	eng, err := mnn.Open(cfg.Model, cfg.Options...)
	if err != nil {
		return fmt.Errorf("serve: load %q: %w", m.Ref(), err)
	}
	var b *batcher
	if cfg.Batch.MaxBatch > 1 {
		b, err = newBatcher(cfg, eng, batcherHooks{
			onFlush:   m.mm.recordFlush,
			noteBytes: m.noteBucketBytes,
			onEvict:   m.mm.onBucketEvict,
		})
		if err != nil {
			eng.Close()
			return fmt.Errorf("serve: load %q: %w", m.Ref(), err)
		}
	}
	var deg *mnn.Engine
	if cfg.Admission.Degrade == "int8" {
		if eng.Precision() == mnn.PrecisionInt8 {
			if b != nil {
				b.close()
			}
			eng.Close()
			return fmt.Errorf("serve: load %q: %w: degrade=int8 on a model already executing int8", m.Ref(), ErrBadRequest)
		}
		deg, err = mnn.Open(cfg.Model, append(append([]mnn.Option(nil), cfg.Options...),
			mnn.WithPrecision(mnn.PrecisionInt8))...)
		if err != nil {
			if b != nil {
				b.close()
			}
			eng.Close()
			return fmt.Errorf("serve: load %q: opening int8 degrade engine: %w", m.Ref(), err)
		}
	}
	if o := fi.Hit(fault.SiteRegistryLoad, "mid:"+m.Ref()); o != nil {
		if err := o.Apply(); err != nil {
			if b != nil {
				b.close()
			}
			if deg != nil {
				deg.Close()
			}
			eng.Close()
			return fmt.Errorf("serve: load %q: %w", m.Ref(), err)
		}
	}
	if cfg.Admission.Queue > 0 && m.ctrl.Load() == nil {
		conc := cfg.Admission.Concurrency
		if conc <= 0 {
			conc = eng.PoolSize()
			if cfg.Batch.MaxBatch > conc {
				// Batching needs that many requests in flight at once or
				// full batches can never form.
				conc = cfg.Batch.MaxBatch
			}
		}
		threshold := cfg.Admission.DegradeThreshold
		if threshold <= 0 && cfg.Admission.Degrade != "" {
			threshold = DefaultDegradeThreshold
		}
		m.ctrl.Store(admission.New(admission.Config{
			Name:             m.Ref(),
			Depth:            cfg.Admission.Queue,
			Concurrency:      conc,
			SLO:              cfg.Admission.SLO,
			DegradeThreshold: threshold,
			OnDegrade:        m.mm.onDegrade,
		}))
	}
	m.eng, m.batcher, m.degradeEng = eng, b, deg
	m.loaded = true
	m.isLoaded.Store(true)
	m.bytes = engineSetBytes(eng, b, deg)
	atomic.StoreInt64(&m.bytesApprox, m.bytes)
	m.outMu.Lock()
	m.outputNames = eng.OutputNames()
	m.tuning = eng.TuningStats()
	m.outMu.Unlock()
	m.reg.noteResident(m.bytes)
	m.mm.onLoad(m.bytes)
	return nil
}

// engineSetBytes sums the byte accounting of a model's engines opened at
// load time (the batcher's primary bucket engine included; dynamically
// opened bucket engines report themselves through noteBucketBytes).
// Weights of a shared graph are counted per engine — a deliberately
// conservative estimate, so the budget can under-fill but never silently
// over-fill.
func engineSetBytes(eng *mnn.Engine, b *batcher, deg *mnn.Engine) int64 {
	total := eng.MemoryBytes()
	if b != nil {
		total += b.primaryBytes()
	}
	if deg != nil {
		total += deg.MemoryBytes()
	}
	return total
}

// noteBucketBytes is the batcher's accounting hook for dynamically opened
// bucket engines: it keeps the registry's resident-byte gauge and the
// model's lock-free mirror in step as shape buckets open and are evicted.
// The memory budget is enforced at the next load rather than here —
// enforcing from a batch worker could deadlock against an eviction waiting
// on that same worker — so dynamic buckets may transiently overshoot it.
func (m *Model) noteBucketBytes(delta int64) {
	atomic.AddInt64(&m.bytesApprox, delta)
	m.reg.noteResident(delta)
}

// batcherStats snapshots the batcher's bucket table (ok=false while the
// model has no resident batcher).
func (m *Model) batcherStats() (batcherStats, bool) {
	m.lifeMu.Lock()
	b := m.batcher
	m.lifeMu.Unlock()
	if b == nil {
		return batcherStats{}, false
	}
	return b.stats(), true
}

// acquire snapshots the model's engines for one request, loading them
// first if the model is lazy and not resident. The returned snapshot stays
// valid until release: the refcount taken under lifeMu blocks eviction.
func (m *Model) acquire() (engines, error) {
	m.lifeMu.Lock()
	if m.removed {
		m.lifeMu.Unlock()
		return engines{}, fmt.Errorf("%w: %q", ErrModelNotFound, m.Ref())
	}
	loadedNow := false
	if !m.loaded {
		if err := m.loadLocked(); err != nil {
			m.lifeMu.Unlock()
			return engines{}, err
		}
		loadedNow = true
	}
	m.refs.Add(1)
	m.lastUsed.Store(time.Now().UnixNano())
	es := engines{eng: m.eng, batcher: m.batcher, degradeEng: m.degradeEng, ctrl: m.ctrl.Load()}
	m.lifeMu.Unlock()
	if loadedNow {
		// Budget enforcement never takes two model locks at once (we hold
		// none here), so concurrent loads cannot deadlock evicting each
		// other; our own refcount keeps the just-loaded engines safe.
		m.reg.enforceBudget()
	}
	return es, nil
}

// release drops the request's hold on the engines.
func (m *Model) release() { m.refs.Add(-1) }

// evict closes the engines of an idle resident model, keeping its
// configuration and admission controller for the next load. Reports false
// when the model is busy, already evicted, or removed.
func (m *Model) evict() bool {
	m.lifeMu.Lock()
	if !m.loaded || m.removed || m.refs.Load() > 0 {
		m.lifeMu.Unlock()
		return false
	}
	m.closeEnginesLocked()
	// Drop the references so graph weights and arenas of a by-name model
	// become collectable; the cached config reloads them on demand.
	m.eng, m.batcher, m.degradeEng = nil, nil, nil
	freed := m.bytes
	m.bytes = 0
	atomic.StoreInt64(&m.bytesApprox, 0)
	m.loaded = false
	m.isLoaded.Store(false)
	m.lifeMu.Unlock()
	m.reg.noteResident(-freed)
	m.mm.onEvict(freed)
	return true
}

// closeEnginesLocked tears down the batcher (draining its queue) before
// the engines (lifeMu held). The pointers are kept: a removed model's
// Engine() still hands out the closed engine (whose Infer reports
// ErrEngineClosed), which is what hot-swap callers observe; evict drops
// them separately.
func (m *Model) closeEnginesLocked() {
	if m.batcher != nil {
		m.batcher.close()
	}
	if m.degradeEng != nil {
		m.degradeEng.Close()
	}
	m.eng.Close()
}

// close removes the model for good: queued admission waiters are released
// first, then the engines are torn down. Idempotent.
func (m *Model) close() {
	m.lifeMu.Lock()
	if m.removed {
		m.lifeMu.Unlock()
		return
	}
	m.removed = true
	if c := m.ctrl.Load(); c != nil {
		c.Close()
	}
	var freed int64
	if m.loaded {
		m.closeEnginesLocked()
		freed = m.bytes
		m.bytes = 0
		atomic.StoreInt64(&m.bytesApprox, 0)
		m.loaded = false
		m.isLoaded.Store(false)
	}
	m.lifeMu.Unlock()
	if freed != 0 {
		m.reg.noteResident(-freed)
	}
}

// InferInfo describes how one request was served.
type InferInfo struct {
	// Precision is the execution precision of the path that served the
	// request ("fp32" or "int8"); it differs from the model's loaded
	// precision exactly when the request was served degraded.
	Precision string
	// Degraded is true when the request ran on the degrade engine.
	Degraded bool
	// QueueWait is how long the request waited for an execution slot.
	QueueWait time.Duration
}

// Infer runs one logical request at the model's default priority. With
// batching enabled, single-sample requests are coalesced into batched runs
// per input-shape bucket; requests that cannot occupy a batch slot (or
// whose shape cannot get a bucket) fall through to the unbatched engine.
func (m *Model) Infer(ctx context.Context, inputs map[string]*mnn.Tensor) (map[string]*mnn.Tensor, error) {
	out, _, err := m.InferWith(ctx, inputs, m.defaultPri)
	return out, err
}

// InferWith runs one logical request at the given priority through
// admission control (when configured): the request may be shed immediately
// with an error wrapping admission.ErrOverloaded, queued for a bounded
// time, or routed to the degrade engine under sustained overload. On a
// lazy model the first request (and the first after an eviction) also
// opens the engines.
func (m *Model) InferWith(ctx context.Context, inputs map[string]*mnn.Tensor, pri admission.Priority) (map[string]*mnn.Tensor, InferInfo, error) {
	if err := m.quarantineGate(); err != nil {
		return nil, InferInfo{}, err
	}
	es, err := m.acquire()
	if err != nil {
		return nil, InferInfo{}, err
	}
	defer m.release()
	info := InferInfo{Precision: es.eng.Precision().String()}
	if es.ctrl == nil {
		start := time.Now()
		out, err := es.infer(ctx, inputs)
		m.mm.observeInfer(time.Since(start))
		m.noteInferOutcome(err)
		return out, info, err
	}
	tk, err := es.ctrl.Acquire(ctx, pri)
	if err != nil {
		var oe *admission.OverloadError
		switch {
		case errors.As(err, &oe):
			m.mm.observeShed(oe.Reason)
		case errors.Is(err, admission.ErrClosed):
			err = fmt.Errorf("%w: %q unloading", ErrServerClosed, m.Ref())
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// Same shape the engine reports for a context that dies
			// mid-inference, so clients see one cancellation error.
			err = fmt.Errorf("%w: %v", mnn.ErrCancelled, err)
		}
		return nil, info, err
	}
	m.mm.observeQueueWait(tk.QueueWait())
	info.QueueWait = tk.QueueWait()
	start := time.Now()
	var out map[string]*mnn.Tensor
	if es.degradeEng != nil && es.ctrl.Degraded() {
		info.Degraded = true
		info.Precision = es.degradeEng.Precision().String()
		out, err = es.degradeEng.Infer(ctx, inputs)
	} else {
		out, err = es.infer(ctx, inputs)
	}
	tk.Release()
	m.mm.observeInfer(time.Since(start))
	m.noteInferOutcome(err)
	return out, info, err
}

// infer is the pre-admission serving path: batcher when active, otherwise
// the unbatched engine.
func (es engines) infer(ctx context.Context, inputs map[string]*mnn.Tensor) (map[string]*mnn.Tensor, error) {
	if es.batcher != nil {
		return es.batcher.infer(ctx, inputs)
	}
	return es.eng.Infer(ctx, inputs)
}

// Metadata assembles the protocol metadata from the engine's declared
// inputs and outputs, loading a lazy model if needed (a metadata request
// warms the model). Output shapes are not reported: they depend on the
// request and the engine only exposes prepared input shapes.
func (m *Model) Metadata() (ModelMetadata, error) {
	es, err := m.acquire()
	if err != nil {
		return ModelMetadata{}, err
	}
	defer m.release()
	md := ModelMetadata{
		Name: m.name, Version: m.version, Platform: "mnn-go",
		Precision: es.eng.Precision().String(),
	}
	for _, in := range es.eng.InputNames() {
		md.Inputs = append(md.Inputs, TensorMetadata{
			Name: in, Datatype: DatatypeFP32, Shape: es.eng.InputShape(in),
		})
	}
	for _, out := range es.eng.OutputNames() {
		md.Outputs = append(md.Outputs, TensorMetadata{Name: out, Datatype: DatatypeFP32})
	}
	return md, nil
}
