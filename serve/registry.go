package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"mnn"
	"mnn/internal/metrics"
	"mnn/serve/admission"
)

// BatchConfig tunes the per-model dynamic micro-batcher.
type BatchConfig struct {
	// MaxBatch is the largest number of single requests coalesced into one
	// batched run (and the batch size the second engine is prepared at).
	// Values <= 1 disable batching: every request runs on the unbatched
	// engine directly.
	MaxBatch int
	// MaxLatency bounds how long the first queued request waits for the
	// batch to fill before a partial flush (default 2ms when batching is
	// enabled). Larger values trade tail latency for bigger batches.
	MaxLatency time.Duration
}

// DefaultMaxLatency is the batching window used when BatchConfig enables
// batching without choosing one.
const DefaultMaxLatency = 2 * time.Millisecond

// AdmissionConfig enables SLO-aware admission control for one model: a
// bounded request queue with priority classes, deadline-aware load shedding
// (reject-early with HTTP 429 instead of timeout-late), and optional
// graceful degradation to a cheaper engine under sustained overload.
type AdmissionConfig struct {
	// Queue is the bounded queue depth in front of the engine. 0 disables
	// admission control entirely (and the other fields must be unset).
	Queue int
	// Concurrency is how many admitted requests execute at once. 0 derives
	// it from the engine: max(pool size, micro-batch size), so batching can
	// still fill whole batches.
	Concurrency int
	// SLO is the per-model latency budget measured from arrival; requests
	// that cannot meet it given the current backlog are shed immediately.
	// 0 means only explicit client deadlines shed.
	SLO time.Duration
	// DefaultPriority classes requests that don't send X-Request-Priority
	// (zero value: normal).
	DefaultPriority admission.Priority
	// Degrade, when "int8", opens a second engine at int8 precision and
	// routes traffic to it while the shed-rate EWMA exceeds
	// DegradeThreshold (routing back below half the threshold). Responses
	// served degraded carry `"precision": "int8"`.
	Degrade string
	// DegradeThreshold is the shed-rate EWMA trigger; 0 means 0.3.
	DegradeThreshold float64
}

// DefaultDegradeThreshold is the shed-rate EWMA above which a model with
// Degrade configured switches to its degrade engine.
const DefaultDegradeThreshold = 0.3

// ModelConfig describes one model for Registry.Load.
type ModelConfig struct {
	// Model is what mnn.Open accepts: a *mnn.Graph, a built-in network name
	// or model file path, or an io.Reader of the binary format.
	Model any
	// Options configure the unbatched engine (pool size, threads, forward
	// type, prepared input shapes, …). The batched engine, when enabled,
	// reuses them with only the input shapes overridden to batch size.
	Options []mnn.Option
	// Batch enables and tunes dynamic micro-batching.
	Batch BatchConfig
	// Admission enables and tunes SLO-aware admission control.
	Admission AdmissionConfig
}

// Model is one loaded entry of a Registry: the unbatched engine plus an
// optional micro-batcher in front of a second, batch-prepared engine, an
// optional admission controller gating both, and an optional degrade engine
// for overload fallback.
type Model struct {
	name       string
	eng        *mnn.Engine
	batcher    *batcher
	ctrl       *admission.Controller
	degradeEng *mnn.Engine
	defaultPri admission.Priority
	mm         *modelMetrics
}

// Registry owns named models with hot load/unload. All methods are safe for
// concurrent use; Infer traffic against other models is never blocked by a
// Load (engine preparation happens outside the lock).
type Registry struct {
	mu      sync.RWMutex
	models  map[string]*Model
	closed  bool
	metrics *serverMetrics
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]*Model), metrics: newServerMetrics()}
}

// Metrics exposes the registry's metric families (what the server renders
// on /metrics), e.g. for mounting into an existing metrics pipeline.
func (r *Registry) Metrics() *metrics.Registry { return r.metrics.reg }

// refreshMetrics pulls scrape-time gauges (queue depth, in-flight, degrade
// state) from every model's admission controller.
func (r *Registry) refreshMetrics() {
	r.mu.RLock()
	models := make([]*Model, 0, len(r.models))
	for _, m := range r.models {
		models = append(models, m)
	}
	r.mu.RUnlock()
	for _, m := range models {
		m.mm.refresh(m.ctrl)
	}
}

// validate rejects inconsistent admission configuration; every failure
// wraps ErrBadRequest so the repository API maps it to HTTP 400.
func (a AdmissionConfig) validate() error {
	if a.Queue < 0 {
		return fmt.Errorf("%w: admission queue depth %d is negative", ErrBadRequest, a.Queue)
	}
	if a.Degrade != "" && a.Degrade != "int8" {
		return fmt.Errorf("%w: unknown degrade mode %q (want \"int8\")", ErrBadRequest, a.Degrade)
	}
	if a.Queue == 0 && (a.SLO > 0 || a.Degrade != "" || a.Concurrency > 0 || a.DegradeThreshold > 0) {
		return fmt.Errorf("%w: admission options (slo, degrade, concurrency) require a queue depth > 0", ErrBadRequest)
	}
	return nil
}

// Load opens the model's engine(s) and publishes them under name, replacing
// (and closing) any previous model with the same name — a hot swap: requests
// already inside the old engine finish, new requests see the new one.
func (r *Registry) Load(name string, cfg ModelConfig) error {
	if name == "" {
		return fmt.Errorf("%w: empty model name", ErrBadRequest)
	}
	if err := cfg.Admission.validate(); err != nil {
		return fmt.Errorf("serve: load %q: %w", name, err)
	}
	if rdr, ok := cfg.Model.(io.Reader); ok {
		// The batcher opens the model a second time; a stream can only be
		// consumed once, so resolve it to a graph up front.
		g, err := mnn.LoadGraph(rdr)
		if err != nil {
			return fmt.Errorf("serve: load %q: %w", name, err)
		}
		cfg.Model = g
	}
	eng, err := mnn.Open(cfg.Model, cfg.Options...)
	if err != nil {
		return fmt.Errorf("serve: load %q: %w", name, err)
	}
	m := &Model{
		name: name, eng: eng,
		defaultPri: cfg.Admission.DefaultPriority,
		mm:         r.metrics.forModel(name, cfg.Admission.Queue, cfg.Batch.MaxBatch),
	}
	if cfg.Batch.MaxBatch > 1 {
		b, err := newBatcher(cfg, eng, m.mm.recordFlush)
		if err != nil {
			eng.Close()
			return fmt.Errorf("serve: load %q: %w", name, err)
		}
		m.batcher = b
	}
	if cfg.Admission.Degrade == "int8" {
		if eng.Precision() == mnn.PrecisionInt8 {
			m.close()
			return fmt.Errorf("serve: load %q: %w: degrade=int8 on a model already executing int8", name, ErrBadRequest)
		}
		deg, err := mnn.Open(cfg.Model, append(append([]mnn.Option(nil), cfg.Options...),
			mnn.WithPrecision(mnn.PrecisionInt8))...)
		if err != nil {
			m.close()
			return fmt.Errorf("serve: load %q: opening int8 degrade engine: %w", name, err)
		}
		m.degradeEng = deg
	}
	if cfg.Admission.Queue > 0 {
		conc := cfg.Admission.Concurrency
		if conc <= 0 {
			conc = eng.PoolSize()
			if cfg.Batch.MaxBatch > conc {
				// Batching needs that many requests in flight at once or
				// full batches can never form.
				conc = cfg.Batch.MaxBatch
			}
		}
		threshold := cfg.Admission.DegradeThreshold
		if threshold <= 0 && cfg.Admission.Degrade != "" {
			threshold = DefaultDegradeThreshold
		}
		m.ctrl = admission.New(admission.Config{
			Name:             name,
			Depth:            cfg.Admission.Queue,
			Concurrency:      conc,
			SLO:              cfg.Admission.SLO,
			DegradeThreshold: threshold,
			OnDegrade:        m.mm.onDegrade,
		})
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		m.close()
		return ErrServerClosed
	}
	old := r.models[name]
	r.models[name] = m
	r.mu.Unlock()
	if old != nil {
		old.close()
	}
	return nil
}

// Unload removes and closes a model. In-flight inferences against it finish
// normally; later requests get ErrModelNotFound.
func (r *Registry) Unload(name string) error {
	r.mu.Lock()
	m, ok := r.models[name]
	delete(r.models, name)
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	m.close()
	return nil
}

// Get looks up a loaded model.
func (r *Registry) Get(name string) (*Model, error) {
	r.mu.RLock()
	m, ok := r.models[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	return m, nil
}

// Names lists the loaded model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.models))
	for name := range r.models {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Close unloads every model and rejects further Loads.
func (r *Registry) Close() error {
	r.mu.Lock()
	models := r.models
	r.models = make(map[string]*Model)
	r.closed = true
	r.mu.Unlock()
	for _, m := range models {
		m.close()
	}
	return nil
}

// Name returns the registry name of the model.
func (m *Model) Name() string { return m.name }

// Engine exposes the unbatched engine (e.g. for direct in-process calls).
func (m *Model) Engine() *mnn.Engine { return m.eng }

// Batching reports whether the dynamic micro-batcher is active.
func (m *Model) Batching() bool { return m.batcher != nil }

// Admission reports whether admission control is active.
func (m *Model) Admission() bool { return m.ctrl != nil }

// AdmissionStats snapshots the admission controller (zero Stats without
// admission control).
func (m *Model) AdmissionStats() admission.Stats {
	if m.ctrl == nil {
		return admission.Stats{}
	}
	return m.ctrl.Stats()
}

// Degraded reports whether the model is currently routing to its degrade
// engine.
func (m *Model) Degraded() bool {
	return m.ctrl != nil && m.degradeEng != nil && m.ctrl.Degraded()
}

// DefaultPriority is the class for requests that don't choose one.
func (m *Model) DefaultPriority() admission.Priority { return m.defaultPri }

// InferInfo describes how one request was served.
type InferInfo struct {
	// Precision is the execution precision of the path that served the
	// request ("fp32" or "int8"); it differs from the model's loaded
	// precision exactly when the request was served degraded.
	Precision string
	// Degraded is true when the request ran on the degrade engine.
	Degraded bool
	// QueueWait is how long the request waited for an execution slot.
	QueueWait time.Duration
}

// Infer runs one logical request at the model's default priority. With
// batching enabled, single-sample requests matching the prepared shape are
// coalesced into batched runs; everything else falls through to the
// unbatched engine.
func (m *Model) Infer(ctx context.Context, inputs map[string]*mnn.Tensor) (map[string]*mnn.Tensor, error) {
	out, _, err := m.InferWith(ctx, inputs, m.defaultPri)
	return out, err
}

// InferWith runs one logical request at the given priority through
// admission control (when configured): the request may be shed immediately
// with an error wrapping admission.ErrOverloaded, queued for a bounded
// time, or routed to the degrade engine under sustained overload.
func (m *Model) InferWith(ctx context.Context, inputs map[string]*mnn.Tensor, pri admission.Priority) (map[string]*mnn.Tensor, InferInfo, error) {
	info := InferInfo{Precision: m.eng.Precision().String()}
	if m.ctrl == nil {
		start := time.Now()
		out, err := m.inferDirect(ctx, inputs)
		m.mm.observeInfer(time.Since(start))
		return out, info, err
	}
	tk, err := m.ctrl.Acquire(ctx, pri)
	if err != nil {
		var oe *admission.OverloadError
		switch {
		case errors.As(err, &oe):
			m.mm.observeShed(oe.Reason)
		case errors.Is(err, admission.ErrClosed):
			err = fmt.Errorf("%w: %q unloading", ErrServerClosed, m.name)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// Same shape the engine reports for a context that dies
			// mid-inference, so clients see one cancellation error.
			err = fmt.Errorf("%w: %v", mnn.ErrCancelled, err)
		}
		return nil, info, err
	}
	m.mm.observeQueueWait(tk.QueueWait())
	info.QueueWait = tk.QueueWait()
	start := time.Now()
	var out map[string]*mnn.Tensor
	if m.degradeEng != nil && m.ctrl.Degraded() {
		info.Degraded = true
		info.Precision = m.degradeEng.Precision().String()
		out, err = m.degradeEng.Infer(ctx, inputs)
	} else {
		out, err = m.inferDirect(ctx, inputs)
	}
	tk.Release()
	m.mm.observeInfer(time.Since(start))
	return out, info, err
}

// inferDirect is the pre-admission serving path: batcher when active,
// otherwise the unbatched engine.
func (m *Model) inferDirect(ctx context.Context, inputs map[string]*mnn.Tensor) (map[string]*mnn.Tensor, error) {
	if m.batcher != nil {
		return m.batcher.infer(ctx, inputs)
	}
	return m.eng.Infer(ctx, inputs)
}

// Metadata assembles the protocol metadata from the engine's declared
// inputs and outputs. Output shapes are not reported: they depend on the
// request and the engine only exposes prepared input shapes.
func (m *Model) Metadata() ModelMetadata {
	md := ModelMetadata{Name: m.name, Platform: "mnn-go", Precision: m.eng.Precision().String()}
	for _, in := range m.eng.InputNames() {
		md.Inputs = append(md.Inputs, TensorMetadata{
			Name: in, Datatype: DatatypeFP32, Shape: m.eng.InputShape(in),
		})
	}
	for _, out := range m.eng.OutputNames() {
		md.Outputs = append(md.Outputs, TensorMetadata{Name: out, Datatype: DatatypeFP32})
	}
	return md
}

// close releases queued admission waiters first, then tears down the
// batcher (draining its queue) before the engines.
func (m *Model) close() {
	if m.ctrl != nil {
		m.ctrl.Close()
	}
	if m.batcher != nil {
		m.batcher.close()
	}
	if m.degradeEng != nil {
		m.degradeEng.Close()
	}
	m.eng.Close()
}
