//go:build race

package serve

// raceEnabled lets the end-to-end test shrink the served input shapes: the
// race detector multiplies convolution cost ~20×, and the scenario is about
// serving behaviour, not ImageNet-sized compute.
const raceEnabled = true
