package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mnn"
	"mnn/internal/tensor"
)

// dynTransformerOptions opens the transformer planned for any sequence
// length up to 16 — the serve-side entry point of the dynamic-shape engine.
func dynTransformerOptions() []mnn.Option {
	return []mnn.Option{
		mnn.WithMaxInputShapes(map[string][]int{"tokens": {1, 16, 32}}),
		mnn.WithPoolSize(2),
	}
}

// tryInferTokensOverHTTP is tryInferOverHTTP for models whose input is
// named "tokens" (the transformer built-in) rather than "data".
func tryInferTokensOverHTTP(base, model string, in *mnn.Tensor) (map[string]*mnn.Tensor, int, []byte, error) {
	req := InferRequest{Inputs: []InferTensor{EncodeTensor("tokens", in)}}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, nil, err
	}
	hresp, err := http.Post(base+"/v2/models/"+model+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, nil, err
	}
	defer hresp.Body.Close()
	blob, err := io.ReadAll(hresp.Body)
	if err != nil {
		return nil, hresp.StatusCode, nil, err
	}
	if hresp.StatusCode != http.StatusOK {
		return nil, hresp.StatusCode, blob, nil
	}
	var resp InferResponse
	if err := json.Unmarshal(blob, &resp); err != nil {
		return nil, hresp.StatusCode, blob, fmt.Errorf("infer response: %v\n%s", err, blob)
	}
	out := make(map[string]*mnn.Tensor, len(resp.Outputs))
	for _, it := range resp.Outputs {
		dec, err := it.DecodeTensor()
		if err != nil {
			return nil, hresp.StatusCode, blob, fmt.Errorf("decoding output %q: %v", it.Name, err)
		}
		out[it.Name] = dec
	}
	return out, hresp.StatusCode, blob, nil
}

// TestDynamicBucketsMixedLengthBitwise is the end-to-end acceptance test
// for dynamic mode (run under -race in CI): three sequence lengths hit the
// transformer concurrently over HTTP, all are batched through the ONE
// shared dynamic engine (exact-n stacking, no padding), and every response
// is bitwise identical to a static unbatched engine prepared at exactly
// that request's shape. It also pins the out-of-plan HTTP contract: a
// sequence longer than the plan is a 400, not a corrupted answer.
func TestDynamicBucketsMixedLengthBitwise(t *testing.T) {
	shapes := [][]int{{1, 16, 32}, {1, 8, 32}, {1, 12, 32}}
	reg := NewRegistry()
	defer reg.Close()
	err := reg.Load("transformer", ModelConfig{
		Model:   "transformer",
		Options: dynTransformerOptions(),
		Batch:   BatchConfig{MaxBatch: 4, MaxLatency: 5 * time.Millisecond, Buckets: len(shapes)},
	})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := startServer(t, reg)

	const perShape = 8
	type job struct {
		in   *mnn.Tensor
		want map[string]*mnn.Tensor
		name string
	}
	var jobs []job
	for si, shape := range shapes {
		ref, err := mnn.Open("transformer", mnn.WithInputShapes(map[string][]int{"tokens": shape}))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perShape; i++ {
			in := randomInput(uint64(200*si+i+1), shape)
			want, err := ref.Infer(context.Background(), map[string]*mnn.Tensor{"tokens": in})
			if err != nil {
				ref.Close()
				t.Fatal(err)
			}
			jobs = append(jobs, job{in: in, want: want, name: fmt.Sprintf("len %d req %d", shape[1], i)})
		}
		ref.Close()
	}

	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			got, code, blob, err := tryInferTokensOverHTTP(base, "transformer", j.in)
			if err != nil {
				t.Errorf("%s: %v", j.name, err)
				return
			}
			if code != http.StatusOK {
				t.Errorf("%s: HTTP %d: %s", j.name, code, blob)
				return
			}
			assertIdentical(t, j.name, got, j.want)
		}(j)
	}
	wg.Wait()

	m, _ := reg.Get("transformer")
	st, ok := m.batcherStats()
	if !ok {
		t.Fatal("no batcher stats on a batching model")
	}
	if st.runs == 0 {
		t.Fatal("no batched runs despite concurrent same-length traffic")
	}
	if len(st.buckets) != len(shapes) {
		t.Fatalf("tracking %d buckets, want %d: %+v", len(st.buckets), len(shapes), st.buckets)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	scrape := string(blob)
	for _, want := range []string{
		`mnn_batch_buckets{model="transformer:1"} 3`,
		`mnn_batch_bucket_depth{model="transformer:1",bucket="tokens=1x8x32"}`,
		`mnn_batch_bucket_fill_ratio{model="transformer:1",bucket="tokens=1x12x32"}`,
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// Out-of-plan shapes (sequence longer than the planned max) fall
	// through the bucket intake to the dynamic engine's typed rejection,
	// which the server maps to a 400.
	_, code, blob, err := tryInferTokensOverHTTP(base, "transformer", tensor.New(1, 32, 32))
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusBadRequest {
		t.Fatalf("out-of-plan request: HTTP %d (%s), want 400", code, blob)
	}
	// And the server keeps serving in-plan traffic afterwards.
	if _, code, blob, err = tryInferTokensOverHTTP(base, "transformer", jobs[0].in); err != nil || code != http.StatusOK {
		t.Fatalf("in-plan request after rejection: HTTP %d, err %v: %s", code, err, blob)
	}
}

// TestDynamicBucketEvictionKeepsShared: in dynamic mode eviction is pure
// bookkeeping — rotating signatures through a bound-2 bucket table must
// never close the shared engine out from under later traffic, every shape
// stays bitwise-correct, and closing the registry returns the resident
// byte accounting to zero (the shared engine is accounted like a primary
// bucket engine).
func TestDynamicBucketEvictionKeepsShared(t *testing.T) {
	reg := NewRegistry()
	err := reg.Load("transformer", ModelConfig{
		Model:   "transformer",
		Options: dynTransformerOptions(),
		Batch:   BatchConfig{MaxBatch: 2, MaxLatency: time.Millisecond, Buckets: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := reg.Get("transformer")
	shapes := [][]int{{1, 16, 32}, {1, 8, 32}, {1, 12, 32}, {1, 4, 32}, {1, 8, 32}}
	for i, shape := range shapes {
		in := randomInput(uint64(i+80), shape)
		ref, err := mnn.Open("transformer", mnn.WithInputShapes(map[string][]int{"tokens": shape}))
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Infer(context.Background(), map[string]*mnn.Tensor{"tokens": in})
		ref.Close()
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Infer(context.Background(), map[string]*mnn.Tensor{"tokens": in})
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		assertIdentical(t, fmt.Sprintf("shape %v", shape), got, want)
	}
	st, _ := m.batcherStats()
	if len(st.buckets) > 2 {
		t.Fatalf("bucket table grew to %d, want <= 2", len(st.buckets))
	}
	if st.evictions < 1 {
		t.Fatal("no bucket evictions despite 4 signatures against a bound of 2")
	}
	reg.Close()
	if got := reg.ResidentBytes(); got != 0 {
		t.Fatalf("resident bytes %d after Close, want 0 (shared dynamic engine leaked from the accounting)", got)
	}
}

// TestDynamicBucketEvictHammer is the satellite-3 -race regression:
// submits at five in-plan sequence lengths race the bound-2 bucket table's
// constant evictions and then close() itself. Dynamic buckets own no
// engine, so an eviction concurrent with that bucket's in-flight batch
// must be pure bookkeeping — if eviction ever closed the shared engine
// under a run, the racing submitters would see engine-closed errors.
func TestDynamicBucketEvictHammer(t *testing.T) {
	eng, err := mnn.Open("transformer", dynTransformerOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	b, err := newBatcher(ModelConfig{
		Model:   "transformer",
		Options: dynTransformerOptions(),
		Batch:   BatchConfig{MaxBatch: 4, MaxLatency: 200 * time.Microsecond, Buckets: 2},
	}, eng, batcherHooks{})
	if err != nil {
		t.Fatal(err)
	}
	shapes := [][]int{{1, 16, 32}, {1, 8, 32}, {1, 12, 32}, {1, 4, 32}, {1, 6, 32}}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := randomInput(uint64(i+1), shapes[i%len(shapes)])
			for {
				// Every shape is in-plan: whether it lands in a bucket, is
				// evicted mid-queue, or falls through to the (dynamic)
				// unbatched engine during shutdown, it must succeed.
				if _, err := b.infer(context.Background(), map[string]*mnn.Tensor{"tokens": in}); err != nil {
					t.Errorf("submitter %d: %v", i, err)
					return
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(i)
	}
	time.Sleep(100 * time.Millisecond)
	if b.evictions.Load() == 0 {
		t.Error("no evictions despite 5 signatures against a bound of 2")
	}
	b.close() // shared engine closes only here, after the drain
	close(stop)
	wg.Wait()
}

// TestStatsDoesNotBlockOnOpen pins the metrics-scrape stall fix: stats()
// must read bucket residency from the atomic flag, never by taking
// openMu — a dispatch worker holds openMu across an arbitrarily slow
// engine open, and stats() runs under batcher.mu, so blocking would
// freeze the scheduler's whole intake path for the duration.
func TestStatsDoesNotBlockOnOpen(t *testing.T) {
	g := tinyGraph(t)
	eng, err := mnn.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	b, err := newBatcher(ModelConfig{
		Model: g,
		Batch: BatchConfig{MaxBatch: 4, MaxLatency: time.Millisecond},
	}, eng, batcherHooks{})
	if err != nil {
		t.Fatal(err)
	}
	b.primary.openMu.Lock() // a worker mid-open holds this indefinitely
	done := make(chan batcherStats, 1)
	go func() { done <- b.stats() }()
	select {
	case st := <-done:
		if len(st.buckets) != 1 || !st.buckets[0].resident {
			t.Errorf("primary bucket not reported resident: %+v", st.buckets)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stats() blocked on a bucket's openMu — a metrics scrape would freeze serving")
	}
	b.primary.openMu.Unlock()
	b.close()
}
