// Quickstart: build a network, run the offline optimizer, open an Engine
// (which performs MNN's pre-inference once per pooled session), and classify
// one input — the shortest end-to-end path through the v2 public API.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"mnn"
	"mnn/internal/tensor"
)

func main() {
	// 1. A model. mnn.Open also accepts a built-in network name or a .mnng
	//    path directly; building the graph explicitly lets us run the
	//    offline optimizer first.
	graph, err := mnn.BuildNetwork("squeezenet-v1.1")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Offline optimization: fuse Conv+BN+ReLU, drop Dropout, replace
	//    BatchNorm with folded Scale (Figure 2 of the paper).
	before := len(graph.Nodes)
	if err := mnn.Optimize(graph); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer: %d → %d nodes\n", before, len(graph.Nodes))

	// 3. Open the engine. This runs pre-inference: shape inference, cost-
	//    based scheme selection per convolution (Eq. 2–3), memory planning
	//    (Figure 3) and weight pre-transforms. Infer is then pure compute
	//    and safe to call from many goroutines at once.
	eng, err := mnn.Open(graph, mnn.WithThreads(4))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	stats := eng.Stats()
	fmt.Printf("schemes chosen: %v\n", stats.SchemeCounts)
	fmt.Printf("activation arena: %.1f MB (planned once, reused every run)\n",
		float64(stats.ArenaFloats["CPU"])*4/(1<<20))

	// 4. An input. A real application would decode an image into
	//    1×3×224×224 RGB; synthetic data keeps the example offline.
	img := mnn.NewTensor(eng.InputShape("data")...)
	tensor.FillRandom(img, 2024, 1)

	// 5. Infer and read the classification. The context bounds the
	//    inference: a cancelled or expired ctx aborts between operators
	//    with mnn.ErrCancelled.
	out, err := eng.Infer(context.Background(), map[string]*mnn.Tensor{"data": img})
	if err != nil {
		log.Fatal(err)
	}
	probs := out["prob"].Data()
	type pair struct {
		class int
		p     float32
	}
	top := make([]pair, len(probs))
	for i, p := range probs {
		top[i] = pair{i, p}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].p > top[j].p })
	fmt.Println("top-5 classes (synthetic weights, so arbitrary but deterministic):")
	for _, t := range top[:5] {
		fmt.Printf("  class %4d  p=%.4f\n", t.class, t.p)
	}
}
