// Quickstart: build a network, run the offline optimizer, create a session
// (which performs MNN's pre-inference), and classify one input — the
// shortest end-to-end path through the public API.
package main

import (
	"fmt"
	"log"
	"sort"

	"mnn"
	"mnn/internal/tensor"
)

func main() {
	// 1. A model. Normally this comes from mnn.LoadModelFile("model.mnng")
	//    after converting with cmd/mnnconvert; the built-in zoo keeps this
	//    example self-contained.
	graph, err := mnn.BuildNetwork("squeezenet-v1.1")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Offline optimization: fuse Conv+BN+ReLU, drop Dropout, replace
	//    BatchNorm with folded Scale (Figure 2 of the paper).
	before := len(graph.Nodes)
	if err := mnn.Optimize(graph); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer: %d → %d nodes\n", before, len(graph.Nodes))

	// 3. Create a session. This runs pre-inference: shape inference, cost-
	//    based scheme selection per convolution (Eq. 2–3), memory planning
	//    (Figure 3) and weight pre-transforms.
	sess, err := mnn.NewInterpreter(graph).CreateSession(mnn.Config{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	stats := sess.Stats()
	fmt.Printf("schemes chosen: %v\n", stats.SchemeCounts)
	fmt.Printf("activation arena: %.1f MB (planned once, reused every run)\n",
		float64(stats.ArenaFloats["CPU"])*4/(1<<20))

	// 4. Fill the input. A real application would decode an image into
	//    1×3×224×224 RGB; synthetic data keeps the example offline.
	input := sess.Input("data")
	img := tensor.New(input.Shape()...)
	tensor.FillRandom(img, 2024, 1)
	input.CopyFrom(img)

	// 5. Run and read the classification.
	elapsed, err := sess.RunTimed()
	if err != nil {
		log.Fatal(err)
	}
	probs := sess.Output("prob").Data()
	type pair struct {
		class int
		p     float32
	}
	top := make([]pair, len(probs))
	for i, p := range probs {
		top[i] = pair{i, p}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].p > top[j].p })
	fmt.Printf("inference: %.1f ms\n", float64(elapsed.Microseconds())/1000)
	fmt.Println("top-5 classes (synthetic weights, so arbitrary but deterministic):")
	for _, t := range top[:5] {
		fmt.Printf("  class %4d  p=%.4f\n", t.class, t.p)
	}
}
