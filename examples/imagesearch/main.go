// Imagesearch reproduces the paper's Section 4.3 online case study: the
// E-commerce main-object detector that powers search-by-image. It runs the
// detector across the production top-5 device fleet (Table 6), measuring
// simulated per-device latency and the host latency of the real kernels,
// then drives the pooled v2 Engine with an MLPerf-style load test at
// increasing in-flight request counts — the serving shape of the production
// deployment.
package main

import (
	"context"
	"fmt"
	"log"

	"mnn"
	"mnn/internal/device"
	"mnn/internal/engines"
	"mnn/internal/loadgen"
	"mnn/internal/models"
	"mnn/internal/tensor"
)

func main() {
	detector := models.CommoditySearchDetector()
	fmt.Printf("detector: %d ops, input 1×3×300×300, outputs %v\n",
		len(detector.Nodes), detector.OutputNames)

	// --- Fleet latency (Table 6): the service must be smooth on every
	// device type, from flagships to mid-range.
	fmt.Println("\nsimulated average inference time across the production fleet:")
	fleet := []*device.Profile{device.EMLAL00, device.PBEM00, device.PACM00, device.COLAL10, device.OPPOR11}
	var minMs, maxMs float64
	for i, dev := range fleet {
		r, err := engines.Simulate(engines.MNN, detector, dev, engines.Mode{Threads: 4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s (%-14s GPU %-16s): %6.1f ms\n", dev.Name, dev.SoC, dev.GPU, r.SimMs)
		if i == 0 || r.SimMs < minMs {
			minMs = r.SimMs
		}
		if r.SimMs > maxMs {
			maxMs = r.SimMs
		}
	}
	fmt.Printf("  fleet spread: %.2fx — the universality the paper's Table 6 demonstrates\n", maxMs/minMs)

	// --- Real inference on this host through the pooled engine.
	eng, err := mnn.Open(detector, mnn.WithThreads(2), mnn.WithPoolSize(4))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	img := mnn.NewTensor(1, 3, 300, 300)
	tensor.FillRandom(img, 7, 1)
	out, err := eng.Infer(context.Background(), map[string]*mnn.Tensor{"data": img})
	if err != nil {
		log.Fatal(err)
	}
	box := out["box"].Data()
	fmt.Printf("\nmain-object box (scale 1): [%.3f %.3f %.3f %.3f]\n", box[0], box[1], box[2], box[3])

	// --- Concurrent load test (Appendix A's protocol, lifted to the
	// multi-stream serving regime the session pool exists for).
	query := func() error {
		_, err := eng.Infer(context.Background(), map[string]*mnn.Tensor{"data": img})
		return err
	}
	fmt.Printf("\nload test against a pool of %d prepared sessions:\n", eng.PoolSize())
	fmt.Printf("%-10s %10s %12s %12s\n", "in-flight", "qps", "p50 (ms)", "p90 (ms)")
	for _, inFlight := range []int{1, 4, 16} {
		stats, err := loadgen.RunConcurrent(query, loadgen.ConcurrentConfig{
			InFlight: inFlight, MinQueryCount: 16,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %10.2f %12.1f %12.1f\n", inFlight, stats.QPSWithLoadgen,
			float64(stats.P50Latency.Microseconds())/1000,
			float64(stats.P90Latency.Microseconds())/1000)
	}
}
