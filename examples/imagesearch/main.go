// Imagesearch reproduces the paper's Section 4.3 online case study: the
// E-commerce main-object detector that powers search-by-image. It runs the
// detector across the production top-5 device fleet (Table 6), measuring
// simulated per-device latency and the host latency of the real kernels,
// then drives a short MLPerf-style single-stream load test.
package main

import (
	"fmt"
	"log"

	"mnn"
	"mnn/internal/device"
	"mnn/internal/engines"
	"mnn/internal/loadgen"
	"mnn/internal/models"
	"mnn/internal/tensor"
)

func main() {
	detector := models.CommoditySearchDetector()
	fmt.Printf("detector: %d ops, input 1×3×300×300, outputs %v\n",
		len(detector.Nodes), detector.OutputNames)

	// --- Fleet latency (Table 6): the service must be smooth on every
	// device type, from flagships to mid-range.
	fmt.Println("\nsimulated average inference time across the production fleet:")
	fleet := []*device.Profile{device.EMLAL00, device.PBEM00, device.PACM00, device.COLAL10, device.OPPOR11}
	var minMs, maxMs float64
	for i, dev := range fleet {
		r, err := engines.Simulate(engines.MNN, detector, dev, engines.Mode{Threads: 4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s (%-14s GPU %-16s): %6.1f ms\n", dev.Name, dev.SoC, dev.GPU, r.SimMs)
		if i == 0 || r.SimMs < minMs {
			minMs = r.SimMs
		}
		if r.SimMs > maxMs {
			maxMs = r.SimMs
		}
	}
	fmt.Printf("  fleet spread: %.2fx — the universality the paper's Table 6 demonstrates\n", maxMs/minMs)

	// --- Real inference on this host.
	sess, err := mnn.NewInterpreter(detector).CreateSession(mnn.Config{Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	img := tensor.New(1, 3, 300, 300)
	tensor.FillRandom(img, 7, 1)
	sess.Input("data").CopyFrom(img)
	if err := sess.Run(); err != nil {
		log.Fatal(err)
	}
	box := sess.Output("box").Data()
	fmt.Printf("\nmain-object box (scale 1): [%.3f %.3f %.3f %.3f]\n", box[0], box[1], box[2], box[3])

	// --- Single-stream load test (Appendix A's protocol, shortened).
	stats, err := loadgen.RunSingleStream(sess.Run, loadgen.Config{MinQueryCount: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nload test (%d queries on this host):\n", stats.QueryCount)
	fmt.Printf("  QPS w/ loadgen:  %6.2f\n", stats.QPSWithLoadgen)
	fmt.Printf("  QPS w/o loadgen: %6.2f\n", stats.QPSWithoutLoadgen)
	fmt.Printf("  latency p50/p90: %.1f / %.1f ms\n",
		float64(stats.P50Latency.Microseconds())/1000,
		float64(stats.P90Latency.Microseconds())/1000)
}
