// Serving: stand up the KServe-style /v2 HTTP API in-process, hot-load a
// model with dynamic micro-batching, and drive it as a client would — the
// shortest end-to-end path through the serve package. A real deployment
// runs cmd/mnnserve instead; the protocol is identical.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"mnn"
	"mnn/internal/tensor"
	"mnn/serve"
)

func main() {
	// 1. A registry of named models. Each entry is an independently
	//    configured engine; maxBatch 4 puts a dynamic micro-batcher in
	//    front of it that coalesces concurrent requests into stacked runs.
	reg := serve.NewRegistry()
	err := reg.Load("squeezenet", serve.ModelConfig{
		Model:   "squeezenet-v1.1",
		Options: []mnn.Option{mnn.WithPoolSize(2)},
		Batch:   serve.BatchConfig{MaxBatch: 4, MaxLatency: 5 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The HTTP server, on a random loopback port for the example.
	srv := serve.NewServer(reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	base := "http://" + l.Addr().String()
	fmt.Println("serving on", base)

	// 3. Discover the model over the wire, as any client would.
	var md serve.ModelMetadata
	mustGet(base+"/v2/models/squeezenet", &md)
	fmt.Printf("model %q inputs: %s %v\n", md.Name, md.Inputs[0].Name, md.Inputs[0].Shape)

	// 4. Fire 8 concurrent inference requests; the batcher stacks them
	//    into batch-4 runs whose results are bitwise identical to
	//    unbatched single inferences.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			img := mnn.NewTensor(md.Inputs[0].Shape...)
			tensor.FillRandom(img, uint64(2024+i), 1)
			req := serve.InferRequest{
				ID:     fmt.Sprintf("req-%d", i),
				Inputs: []serve.InferTensor{serve.EncodeTensor("data", img)},
			}
			body, _ := json.Marshal(req)
			resp, err := http.Post(base+"/v2/models/squeezenet/infer", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				blob, _ := io.ReadAll(resp.Body)
				log.Fatalf("infer: HTTP %d: %s", resp.StatusCode, blob)
			}
			var out serve.InferResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				log.Fatal(err)
			}
			best, bestP := 0, float32(-1)
			for c, p := range out.Outputs[0].Data {
				if p > bestP {
					best, bestP = c, p
				}
			}
			fmt.Printf("%s: top class %d (p=%.4f)\n", out.ID, best, bestP)
		}(i)
	}
	wg.Wait()

	// 5. Graceful shutdown: stop accepting, drain in-flight work, release
	//    every prepared engine.
	if err := srv.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained and shut down")
}

func mustGet(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(resp.Body)
		log.Fatalf("GET %s: %d: %s", url, resp.StatusCode, blob)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
