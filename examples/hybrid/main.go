// Hybrid demonstrates the backend abstraction module (Section 3.4): one
// engine scheduling operators across a CPU backend and a simulated Vulkan
// GPU on an MI6 profile. The Equation 4–5 cost model sends the convolution
// body to the GPU while operators the GPU backend lacks (here InnerProduct)
// fall back to the CPU, with staging copies inserted automatically —
// "convolution may run on CPU and the following ReLU may run on GPU" without
// the developer managing any of it.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"mnn"
	"mnn/internal/tensor"
)

func main() {
	graph, err := mnn.BuildNetwork("mobilenet-v1")
	if err != nil {
		log.Fatal(err)
	}
	if err := mnn.Optimize(graph); err != nil {
		log.Fatal(err)
	}

	// ForwardAuto + a device profile: every API the device exposes becomes
	// a candidate and the cheapest assignment wins.
	eng, err := mnn.Open(graph,
		mnn.WithForwardType(mnn.ForwardAuto),
		mnn.WithThreads(4),
		mnn.WithDevice("MI6"),
		mnn.WithSimulatedClock(),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	stats := eng.Stats()
	perBackend := map[string]int{}
	for _, b := range stats.Assignment {
		perBackend[b]++
	}
	fmt.Println("Equation 4 backend totals (ms, whole graph per backend):")
	names := make([]string, 0, len(stats.BackendCosts))
	for name := range stats.BackendCosts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-8s %8.2f ms\n", name, stats.BackendCosts[name])
	}
	fmt.Printf("hybrid assignment: %v\n", perBackend)
	fmt.Printf("staging copies inserted: %d\n", stats.CrossBackendCopies)
	for name, floats := range stats.ArenaFloats {
		fmt.Printf("arena[%s]: %.1f MB\n", name, float64(floats)*4/(1<<20))
	}

	img := mnn.NewTensor(1, 3, 224, 224)
	tensor.FillRandom(img, 11, 1)
	eng.ResetSimulatedClock()
	t0 := time.Now()
	if _, err := eng.Infer(context.Background(), map[string]*mnn.Tensor{"data": img}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\none inference: host %.1f ms, simulated MI6 %.1f ms\n",
		float64(time.Since(t0).Microseconds())/1000, eng.SimulatedMs())

	// The same graph pinned to CPU, for comparison.
	cpuEng, err := mnn.Open(graph,
		mnn.WithForwardType(mnn.ForwardCPU),
		mnn.WithThreads(4),
		mnn.WithDevice("MI6"),
		mnn.WithSimulatedClock(),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cpuEng.Close()
	cpuEng.ResetSimulatedClock()
	if _, err := cpuEng.Infer(context.Background(), map[string]*mnn.Tensor{"data": img}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CPU-only simulated MI6: %.1f ms — the cost model picked the faster plan\n",
		cpuEng.SimulatedMs())
}
