// Schemetuner explores the pre-inference scheme selection (Section 3.2,
// Equations 2–3) interactively: for a sweep of convolution configurations it
// prints which algorithm the cost model picks — sliding window, Winograd
// with which tile size, Strassen-matmul (1×1), depthwise or im2col — and the
// predicted saving over the direct kernel. This is the "semi-automated
// search" that replaces both NCNN-style per-shape assembly and TVM-style
// offline auto-tuning.
package main

import (
	"fmt"

	"mnn"
	"mnn/internal/graph"
)

func main() {
	type cfg struct {
		desc                   string
		k, kw, ic, oc, size    int
		stride, dilation, group int
	}
	cases := []cfg{
		{"stem conv, tiny channels", 3, 3, 3, 32, 224, 2, 1, 1},
		{"early 3×3, mid channels", 3, 3, 64, 64, 112, 1, 1, 1},
		{"late 3×3, wide channels", 3, 3, 512, 512, 14, 1, 1, 1},
		{"pointwise 1×1, wide", 1, 1, 256, 256, 28, 1, 1, 1},
		{"pointwise 1×1, narrow", 1, 1, 32, 64, 56, 1, 1, 1},
		{"depthwise 3×3", 3, 3, 256, 256, 28, 1, 1, 256},
		{"asymmetric 1×7 (Inception-B)", 1, 7, 128, 128, 17, 1, 1, 1},
		{"asymmetric 7×1 (Inception-B)", 7, 1, 128, 128, 17, 1, 1, 1},
		{"5×5 (Inception-A)", 5, 5, 48, 64, 35, 1, 1, 1},
		{"dilated 3×3 d2", 3, 3, 64, 64, 56, 1, 2, 1},
		{"grouped 3×3 g4", 3, 3, 64, 64, 56, 1, 1, 4},
		{"strided 3×3 s2", 3, 3, 128, 256, 28, 2, 1, 1},
		{"7×7 stem (ResNet)", 7, 7, 3, 64, 224, 2, 1, 1},
	}
	fmt.Printf("%-30s %-14s %-6s %10s\n", "configuration", "scheme", "tile", "saving")
	for _, c := range cases {
		a := &graph.Conv2DAttrs{
			KernelH: c.k, KernelW: c.kw,
			StrideH: c.stride, StrideW: c.stride,
			DilationH: c.dilation, DilationW: c.dilation,
			PadH: c.k / 2, PadW: c.kw / 2,
			Group: c.group, InputCount: c.ic, OutputCount: c.oc,
		}
		dec := mnn.SelectConvScheme(a, []int{1, c.ic, c.size, c.size})
		tile := "-"
		if dec.Scheme.String() == "winograd" {
			tile = fmt.Sprintf("%d×%d", dec.TileH, dec.TileW)
		}
		saving := (1 - float64(dec.EffMULs)/float64(dec.DirectMULs)) * 100
		fmt.Printf("%-30s %-14s %-6s %9.1f%%\n", c.desc, dec.Scheme, tile, saving)
	}
	fmt.Println("\n(positive saving = effective multiplies below the direct kernel;")
	fmt.Println(" 0% = the fast path equals direct cost and was chosen for other reasons)")
}
