module mnn

go 1.24
