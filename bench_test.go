package mnn_test

// One testing.B benchmark family per table and figure of the paper's
// evaluation (DESIGN.md's per-experiment index). `go test -bench=.` gives
// host numbers for the measured experiments and drives the Equation 5
// simulator for the device-labelled ones; `cmd/mnnbench` prints the same
// data as paper-shaped tables.

import (
	"context"
	"fmt"
	"io"
	"testing"

	"mnn"
	"mnn/internal/bench"
	"mnn/internal/device"
	"mnn/internal/engines"
	"mnn/internal/matmul"
	"mnn/internal/models"
	"mnn/internal/tensor"
)

// --- Table 1: computation scheme selection ------------------------------

func BenchmarkTable1(b *testing.B) {
	for _, c := range bench.Table1Cases {
		for _, scheme := range []string{"sliding", "wino2", "wino6", "ours"} {
			name := fmt.Sprintf("conv%dx%d_ic%d_oc%d_%d/%s", c.K, c.K, c.IC, c.OC, c.Size, scheme)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := bench.Table1Measure(c, scheme, 1, 1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Table 2: preparation–execution decoupling --------------------------

func BenchmarkTable2Decoupled(b *testing.B) {
	g := models.MobileNetV1()
	sess, err := mnn.NewInterpreter(g).CreateSession(mnn.Config{Threads: 4})
	if err != nil {
		b.Fatal(err)
	}
	fillInput(b, sess, "data")
	if err := sess.Run(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2NoPreparation(b *testing.B) {
	g := models.MobileNetV1()
	sess, err := mnn.NewInterpreter(g).CreateSession(mnn.Config{Threads: 4, NoPreparation: true})
	if err != nil {
		b.Fatal(err)
	}
	fillInput(b, sess, "data")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 3: Strassen matmul -------------------------------------------

func BenchmarkTable3(b *testing.B) {
	for _, c := range bench.Table3Cases {
		a := tensor.NewRandom(1, 1, c.M, c.K).Data()
		bm := tensor.NewRandom(2, 1, c.K, c.N).Data()
		dst := make([]float32, c.M*c.N)
		b.Run(fmt.Sprintf("direct_%dx%dx%d", c.M, c.K, c.N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matmul.Mul(dst, a, bm, c.M, c.K, c.N)
			}
		})
		b.Run(fmt.Sprintf("strassen_%dx%dx%d", c.M, c.K, c.N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matmul.MulStrassen(dst, a, bm, c.M, c.K, c.N)
			}
		})
	}
}

// --- Table 4: backend operator coverage (report-style, priced as census) --

func BenchmarkTable4Census(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table4(bench.Options{Quick: true, Out: io.Discard}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 5: TVM deployment cost vs MNN pre-inference -------------------

func BenchmarkTable5PreInference(b *testing.B) {
	g := models.ResNet18()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mnn.NewInterpreter(g).CreateSession(mnn.Config{Threads: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 6: production fleet ------------------------------------------

func BenchmarkTable6FleetSim(b *testing.B) {
	g := models.CommoditySearchDetector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, row := range bench.Table6Devices {
			if _, err := engines.Simulate(engines.MNN, g, row.Dev, engines.Mode{Threads: 4}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Table 7: MLPerf single-stream ---------------------------------------

func BenchmarkTable7SingleStream(b *testing.B) {
	g := models.MobileNetV2()
	sess, err := mnn.NewInterpreter(g).CreateSession(mnn.Config{Threads: 4})
	if err != nil {
		b.Fatal(err)
	}
	fillInput(b, sess, "data")
	if err := sess.Run(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 8: Pixel CPU comparison ---------------------------------------

func BenchmarkTable8(b *testing.B) {
	g := models.InceptionV3()
	for _, dev := range []*device.Profile{device.Pixel2, device.Pixel3} {
		for _, threads := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s_t%d", dev.Name, threads), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := engines.Simulate(engines.MNN, g, dev, engines.Mode{Threads: threads}); err != nil {
						b.Fatal(err)
					}
					if _, err := engines.Simulate(engines.TFLite, g, dev, engines.Mode{Threads: threads}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Figures 7–9: engine comparison grids --------------------------------

func BenchmarkFigure7Grid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure7Grid(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	g := models.InceptionV3()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bar := range bench.Figure8Bars {
			if _, err := engines.Simulate(bar.Engine, g, device.P20, bar.Mode); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, row := range bench.Figure9Nets {
			g, err := models.ByName(row.Name)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := engines.Simulate(engines.MNN, g, device.P20Pro, engines.Mode{Threads: 4}); err != nil {
				b.Fatal(err)
			}
			if _, err := engines.Simulate(engines.TVM, g, device.P20Pro, engines.Mode{Threads: 4}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Ablations ------------------------------------------------------------

func BenchmarkAblationStrassenCutoff(b *testing.B) {
	const size = 384
	a := tensor.NewRandom(1, 1, size, size).Data()
	bm := tensor.NewRandom(2, 1, size, size).Data()
	dst := make([]float32, size*size)
	saved := matmul.MinSplitDim
	defer func() { matmul.MinSplitDim = saved }()
	for _, floor := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("floor%d", floor), func(b *testing.B) {
			matmul.MinSplitDim = floor
			for i := 0; i < b.N; i++ {
				matmul.MulStrassen(dst, a, bm, size, size, size)
			}
		})
	}
}

func BenchmarkAblationMemoryPlan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.AblationMemory(bench.Options{Quick: true, Out: io.Discard}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- End-to-end network inference on the host ----------------------------

func BenchmarkInference(b *testing.B) {
	for _, name := range []string{"mobilenet-v1", "squeezenet-v1.1", "resnet-18"} {
		for _, threads := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/t%d", name, threads), func(b *testing.B) {
				g, err := models.ByName(name)
				if err != nil {
					b.Fatal(err)
				}
				if err := mnn.Optimize(g); err != nil {
					b.Fatal(err)
				}
				sess, err := mnn.NewInterpreter(g).CreateSession(mnn.Config{Threads: threads})
				if err != nil {
					b.Fatal(err)
				}
				fillInput(b, sess, "data")
				if err := sess.Run(); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := sess.Run(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func fillInput(b *testing.B, sess *mnn.Session, name string) {
	b.Helper()
	in := sess.Input(name)
	tmp := tensor.New(in.Shape()...)
	tensor.FillRandom(tmp, 1, 1)
	in.CopyFrom(tmp)
}

// --- Engine.Infer steady state (PR 3's throughput headline) ---------------

// BenchmarkEngineInfer measures the concurrent-facade hot path end to end:
// checkout → input copy → pure-compute run on the persistent worker pool →
// output copy. InferInto reuses caller buffers and must report 0 allocs/op;
// Infer adds only the caller-owned output copies.
func BenchmarkEngineInfer(b *testing.B) {
	for _, threads := range []int{1, 4} {
		eng, err := mnn.Open("mobilenet-v1", mnn.WithThreads(threads))
		if err != nil {
			b.Fatal(err)
		}
		in := tensor.New(1, 3, 224, 224)
		tensor.FillRandom(in, 1, 1)
		inputs := map[string]*mnn.Tensor{"data": in}
		ctx := context.Background()
		outputs, err := eng.Infer(ctx, inputs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Infer/t%d", threads), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Infer(ctx, inputs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("InferInto/t%d", threads), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := eng.InferInto(ctx, inputs, outputs); err != nil {
					b.Fatal(err)
				}
			}
		})
		eng.Close()
	}
}
