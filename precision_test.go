package mnn_test

// Engine-level precision plumbing: option validation, precision parsing for
// CLI/serving flags, the CPU-only constraint of the int8 path, and the
// model-file route (mnnconvert -quantize -calibrate → Open → int8 infer).

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"mnn"
	"mnn/internal/tensor"
)

func TestParsePrecision(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want mnn.Precision
		ok   bool
	}{
		{"fp32", mnn.PrecisionFP32, true},
		{"FLOAT32", mnn.PrecisionFP32, true},
		{"", mnn.PrecisionFP32, true},
		{" int8 ", mnn.PrecisionInt8, true},
		{"I8", mnn.PrecisionInt8, true},
		{"int4", 0, false},
		{"quantum", 0, false},
	} {
		got, err := mnn.ParsePrecision(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParsePrecision(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParsePrecision(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if mnn.PrecisionFP32.String() != "fp32" || mnn.PrecisionInt8.String() != "int8" {
		t.Errorf("Precision.String: %q, %q", mnn.PrecisionFP32, mnn.PrecisionInt8)
	}
}

func TestWithPrecisionValidation(t *testing.T) {
	if _, err := mnn.Open("squeezenet-v1.1", mnn.WithPrecision(mnn.Precision(42))); err == nil {
		t.Fatal("unknown precision must fail Open")
	}
	// Int8 is CPU-only: an explicit GPU forward type is a config error...
	_, err := mnn.Open("squeezenet-v1.1", mnn.WithPrecision(mnn.PrecisionInt8),
		mnn.WithForwardType(mnn.ForwardMetal), mnn.WithDevice("MI6"))
	if !errors.Is(err, mnn.ErrUnknownBackend) {
		t.Fatalf("int8 + Metal: got %v, want ErrUnknownBackend", err)
	}
	// ...but ForwardAuto with a GPU-capable device just schedules on CPU.
	eng, err := mnn.Open("squeezenet-v1.1", mnn.WithPrecision(mnn.PrecisionInt8),
		mnn.WithDevice("MI6"), mnn.WithThreads(1),
		mnn.WithInputShapes(map[string][]int{"data": {1, 3, 32, 32}}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Precision() != mnn.PrecisionInt8 {
		t.Fatalf("engine precision %v", eng.Precision())
	}
	if _, err := eng.Infer(context.Background(), map[string]*mnn.Tensor{
		"data": tensor.NewRandom(1, 1, 1, 3, 32, 32)}); err != nil {
		t.Fatal(err)
	}
}

// TestQuantizedModelFileInt8Infer drives the full offline→runtime loop the
// README documents: build, calibrate, quantize weights, save; then Open the
// file at int8 precision and infer within the conformance budget of the
// original fp32 graph.
func TestQuantizedModelFileInt8Infer(t *testing.T) {
	g, err := mnn.BuildNetwork("squeezenet-v1.1")
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.NewRandom(3, 1, 1, 3, 64, 64)
	shapes := map[string][]int{"data": {1, 3, 64, 64}}
	ref, err := mnn.Open(g, mnn.WithThreads(1), mnn.WithInputShapes(shapes))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want, err := ref.Infer(context.Background(), map[string]*mnn.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := mnn.Calibrate(g, []map[string]*mnn.Tensor{{"data": in}}); err != nil {
		t.Fatal(err)
	}
	if n, _ := mnn.QuantizeWeights(g); n == 0 {
		t.Fatal("no weights quantized")
	}
	path := filepath.Join(t.TempDir(), "sq-int8.mnng")
	if err := mnn.SaveModelFile(g, path); err != nil {
		t.Fatal(err)
	}

	eng, err := mnn.Open(path, mnn.WithThreads(1), mnn.WithInputShapes(shapes),
		mnn.WithPrecision(mnn.PrecisionInt8))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	got, err := eng.Infer(context.Background(), map[string]*mnn.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		// Weight quantization (offline) + activation quantization (runtime)
		// both contribute here, so the budget is looser than the pure
		// runtime conformance budget.
		if d := tensor.MaxAbsDiff(w, got[name]); d > 5e-3 {
			t.Errorf("output %q deviates %.3e from fp32 through the quantized model file", name, d)
		}
	}
}
