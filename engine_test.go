package mnn_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mnn"
	"mnn/internal/tensor"
)

func openTiny(t *testing.T, opts ...mnn.Option) *mnn.Engine {
	t.Helper()
	eng, err := mnn.Open(tinyModel(t), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func TestEngineOpenVariants(t *testing.T) {
	// By *Graph.
	openTiny(t)
	// By built-in network name.
	eng, err := mnn.Open("squeezenet-v1.1")
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	// By io.Reader of the binary model format.
	var buf bytes.Buffer
	if err := mnn.SaveModel(tinyModel(t), &buf); err != nil {
		t.Fatal(err)
	}
	eng2, err := mnn.Open(&buf)
	if err != nil {
		t.Fatal(err)
	}
	eng2.Close()
	// By file path.
	path := filepath.Join(t.TempDir(), "tiny.mnng")
	if err := mnn.SaveModelFile(tinyModel(t), path); err != nil {
		t.Fatal(err)
	}
	eng3, err := mnn.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	eng3.Close()
	// Unknown name → typed error.
	if _, err := mnn.Open("definitely-not-a-network"); !errors.Is(err, mnn.ErrUnknownNetwork) {
		t.Fatalf("Open(unknown) = %v, want ErrUnknownNetwork", err)
	}
	// Unknown device → typed error.
	if _, err := mnn.Open(tinyModel(t), mnn.WithDevice("NokiaBrick")); !errors.Is(err, mnn.ErrUnknownDevice) {
		t.Fatalf("Open(bad device) = %v, want ErrUnknownDevice", err)
	}
	// GPU forward type the device lacks → typed error.
	if _, err := mnn.Open(tinyModel(t), mnn.WithDevice("MI6"), mnn.WithForwardType(mnn.ForwardMetal)); !errors.Is(err, mnn.ErrUnknownBackend) {
		t.Fatalf("Open(Metal on MI6) = %v, want ErrUnknownBackend", err)
	}
}

func TestEngineOptionValidation(t *testing.T) {
	if _, err := mnn.Open(tinyModel(t), mnn.WithThreads(-1)); err == nil {
		t.Error("WithThreads(-1) must fail")
	}
	if _, err := mnn.Open(tinyModel(t), mnn.WithPoolSize(0)); err == nil {
		t.Error("WithPoolSize(0) must fail")
	}
	if _, err := mnn.Open(tinyModel(t), mnn.WithForwardType(mnn.ForwardType(99))); !errors.Is(err, mnn.ErrUnknownBackend) {
		t.Error("bad forward type must fail with ErrUnknownBackend")
	}
}

func TestEngineInferMatchesReference(t *testing.T) {
	eng := openTiny(t, mnn.WithThreads(2))
	in := tensor.New(1, 3, 16, 16)
	tensor.FillRandom(in, 42, 1)
	out, err := eng.Infer(context.Background(), map[string]*mnn.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mnn.RunReference(tinyModel(t), map[string]*mnn.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(ref["prob"], out["prob"]); d > 1e-4 {
		t.Fatalf("engine differs from reference by %g", d)
	}
	// Output tensors are caller-owned copies: mutating them must not affect
	// a subsequent inference.
	out["prob"].Data()[0] = 42
	out2, err := eng.Infer(context.Background(), map[string]*mnn.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(ref["prob"], out2["prob"]); d > 1e-4 {
		t.Fatalf("second inference differs from reference by %g", d)
	}
}

// TestEngineInferConcurrent runs Infer from 8 goroutines against a pooled
// engine (the issue's race-detector test) and checks every result against
// the reference oracle for its input.
func TestEngineInferConcurrent(t *testing.T) {
	const goroutines = 8
	const itersPerG = 6
	eng := openTiny(t, mnn.WithPoolSize(4))

	// Precompute distinct inputs and their reference outputs.
	type tc struct {
		in  *mnn.Tensor
		ref *mnn.Tensor
	}
	cases := make([]tc, goroutines)
	for i := range cases {
		in := tensor.New(1, 3, 16, 16)
		tensor.FillRandom(in, uint64(100+i), 1)
		ref, err := mnn.RunReference(tinyModel(t), map[string]*mnn.Tensor{"data": in})
		if err != nil {
			t.Fatal(err)
		}
		cases[i] = tc{in: in, ref: ref["prob"]}
	}

	var wg sync.WaitGroup
	errc := make(chan error, goroutines*itersPerG)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each goroutine cycles through every case so sessions see
			// different inputs back to back — stale state would show up as a
			// mismatch against the per-input reference.
			for j := 0; j < itersPerG; j++ {
				c := cases[(i+j)%len(cases)]
				out, err := eng.Infer(context.Background(), map[string]*mnn.Tensor{"data": c.in})
				if err != nil {
					errc <- err
					return
				}
				if d := tensor.MaxAbsDiff(c.ref, out["prob"]); d > 1e-4 {
					errc <- fmt.Errorf("goroutine %d iter %d: output differs from reference by %g", i, j, d)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestEngineInferCancelledContext(t *testing.T) {
	eng := openTiny(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := tensor.New(1, 3, 16, 16)
	start := time.Now()
	_, err := eng.Infer(ctx, map[string]*mnn.Tensor{"data": in})
	if !errors.Is(err, mnn.ErrCancelled) {
		t.Fatalf("Infer(cancelled ctx) = %v, want ErrCancelled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled Infer took %v, want prompt return", elapsed)
	}
}

func TestEngineInferCancelledMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds mobilenet-v1; skipping in -short mode")
	}
	eng, err := mnn.Open("mobilenet-v1", mnn.WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	in := tensor.New(1, 3, 224, 224)
	tensor.FillRandom(in, 3, 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	_, err = eng.Infer(ctx, map[string]*mnn.Tensor{"data": in})
	if !errors.Is(err, mnn.ErrCancelled) {
		t.Fatalf("Infer with mid-run cancel = %v, want ErrCancelled", err)
	}
}

func TestEngineInputValidation(t *testing.T) {
	eng := openTiny(t)
	ctx := context.Background()
	// Missing input.
	if _, err := eng.Infer(ctx, nil); !errors.Is(err, mnn.ErrInputShape) {
		t.Fatalf("missing input: %v, want ErrInputShape", err)
	}
	// Unknown input name.
	bogus := map[string]*mnn.Tensor{
		"data":  tensor.New(1, 3, 16, 16),
		"extra": tensor.New(1),
	}
	if _, err := eng.Infer(ctx, bogus); !errors.Is(err, mnn.ErrInputShape) {
		t.Fatalf("unknown input: %v, want ErrInputShape", err)
	}
	// Wrong shape.
	wrong := map[string]*mnn.Tensor{"data": tensor.New(1, 3, 8, 8)}
	if _, err := eng.Infer(ctx, wrong); !errors.Is(err, mnn.ErrInputShape) {
		t.Fatalf("wrong shape: %v, want ErrInputShape", err)
	}
	// Declared input present but nil.
	if _, err := eng.Infer(ctx, map[string]*mnn.Tensor{"data": nil}); !errors.Is(err, mnn.ErrInputShape) {
		t.Fatalf("nil input tensor: %v, want ErrInputShape", err)
	}
	// Wrong rank.
	if _, err := eng.Infer(ctx, map[string]*mnn.Tensor{"data": tensor.New(3, 16, 16)}); !errors.Is(err, mnn.ErrInputShape) {
		t.Fatalf("wrong rank: %v, want ErrInputShape", err)
	}
}

func TestOpenRejectsDirectory(t *testing.T) {
	// A directory path passes os.Stat; it must be rejected up front with
	// ErrUnknownNetwork instead of failing deep inside LoadGraphFile.
	dir := t.TempDir()
	_, err := mnn.Open(dir)
	if !errors.Is(err, mnn.ErrUnknownNetwork) {
		t.Fatalf("Open(directory) = %v, want ErrUnknownNetwork", err)
	}
	if !strings.Contains(err.Error(), "directory") {
		t.Fatalf("Open(directory) error %q does not say it is a directory", err)
	}
}

func TestEngineClose(t *testing.T) {
	eng := openTiny(t)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal("Close must be idempotent:", err)
	}
	in := tensor.New(1, 3, 16, 16)
	if _, err := eng.Infer(context.Background(), map[string]*mnn.Tensor{"data": in}); !errors.Is(err, mnn.ErrEngineClosed) {
		t.Fatalf("Infer after Close = %v, want ErrEngineClosed", err)
	}
}

// Close during in-flight work: the running Infer finishes normally, but no
// new inference may start afterwards — even though the in-flight session is
// checked back in after the pool was drained.
func TestEngineCloseWithInFlightInfer(t *testing.T) {
	eng := openTiny(t) // pool size 1
	in := tensor.New(1, 3, 16, 16)
	tensor.FillRandom(in, 13, 1)
	started := make(chan struct{})
	inflight := make(chan error, 1)
	go func() {
		close(started)
		_, err := eng.Infer(context.Background(), map[string]*mnn.Tensor{"data": in})
		inflight <- err
	}()
	<-started
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// The in-flight call either completed before Close or got ErrEngineClosed
	// while queueing; it must not fail any other way.
	if err := <-inflight; err != nil && !errors.Is(err, mnn.ErrEngineClosed) {
		t.Fatalf("in-flight Infer = %v", err)
	}
	for i := 0; i < 8; i++ {
		if _, err := eng.Infer(context.Background(), map[string]*mnn.Tensor{"data": in}); !errors.Is(err, mnn.ErrEngineClosed) {
			t.Fatalf("Infer %d after Close = %v, want ErrEngineClosed", i, err)
		}
	}
}

func TestEngineMetadata(t *testing.T) {
	eng := openTiny(t, mnn.WithPoolSize(2))
	if eng.PoolSize() != 2 {
		t.Fatalf("PoolSize = %d", eng.PoolSize())
	}
	if got := eng.InputNames(); len(got) != 1 || got[0] != "data" {
		t.Fatalf("InputNames = %v", got)
	}
	if got := eng.OutputNames(); len(got) != 1 || got[0] != "prob" {
		t.Fatalf("OutputNames = %v", got)
	}
	if got := eng.InputShape("data"); !tensor.EqualShape(got, []int{1, 3, 16, 16}) {
		t.Fatalf("InputShape = %v", got)
	}
	if st := eng.Stats(); len(st.Assignment) == 0 {
		t.Fatal("Stats must expose the pre-inference assignment")
	}
}

func TestEngineSimulatedClock(t *testing.T) {
	eng := openTiny(t, mnn.WithDevice("MI6"), mnn.WithForwardType(mnn.ForwardVulkan),
		mnn.WithSimulatedClock())
	in := tensor.New(1, 3, 16, 16)
	tensor.FillRandom(in, 9, 1)
	eng.ResetSimulatedClock()
	if _, err := eng.Infer(context.Background(), map[string]*mnn.Tensor{"data": in}); err != nil {
		t.Fatal(err)
	}
	if eng.SimulatedMs() <= 0 {
		t.Fatal("simulated clock must advance")
	}
	if len(eng.SimulatedByLabel()) == 0 {
		t.Fatal("per-label breakdown must be populated")
	}
	eng.ResetSimulatedClock()
	if eng.SimulatedMs() != 0 {
		t.Fatal("reset failed")
	}
	// Without the option every accessor is a safe no-op (nil clock).
	plain := openTiny(t)
	plain.ResetSimulatedClock()
	if plain.SimulatedMs() != 0 || plain.SimulatedByLabel() != nil {
		t.Fatal("nil clock accessors must be zero-valued")
	}
}

// Regression for the simclock nil-receiver bug at the public API level: a v1
// session created without Simulate holds a nil clock and must not panic.
func TestSessionWithoutSimulateClockSafe(t *testing.T) {
	sess, err := mnn.NewInterpreter(tinyModel(t)).CreateSession(mnn.Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess.ResetSimulatedClock()
	if sess.SimulatedMs() != 0 {
		t.Fatal("SimulatedMs without Simulate must be 0")
	}
}

func TestEngineWithoutPreparation(t *testing.T) {
	// The ablation path forces pool size 1 and still matches the reference.
	eng := openTiny(t, mnn.WithoutPreparation(), mnn.WithPoolSize(4))
	if eng.PoolSize() != 1 {
		t.Fatalf("WithoutPreparation pool size = %d, want 1", eng.PoolSize())
	}
	in := tensor.New(1, 3, 16, 16)
	tensor.FillRandom(in, 21, 1)
	out, err := eng.Infer(context.Background(), map[string]*mnn.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mnn.RunReference(tinyModel(t), map[string]*mnn.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(ref["prob"], out["prob"]); d > 1e-4 {
		t.Fatalf("ablation engine differs from reference by %g", d)
	}
}

func TestEngineInferProfiled(t *testing.T) {
	eng := openTiny(t)
	in := tensor.New(1, 3, 16, 16)
	tensor.FillRandom(in, 5, 1)
	out, p, err := eng.InferProfiled(context.Background(), map[string]*mnn.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}
	if out["prob"] == nil || len(p.Entries) == 0 {
		t.Fatalf("profiled run: out=%v entries=%d", out, len(p.Entries))
	}
}

func TestParseForwardType(t *testing.T) {
	for name, want := range map[string]mnn.ForwardType{
		"auto": mnn.ForwardAuto, "cpu": mnn.ForwardCPU, "CPU": mnn.ForwardCPU,
		"metal": mnn.ForwardMetal, "opencl": mnn.ForwardOpenCL,
		"opengl": mnn.ForwardOpenGL, "Vulkan": mnn.ForwardVulkan,
	} {
		got, err := mnn.ParseForwardType(name)
		if err != nil || got != want {
			t.Errorf("ParseForwardType(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := mnn.ParseForwardType("cuda"); !errors.Is(err, mnn.ErrUnknownBackend) {
		t.Error("ParseForwardType(cuda) must fail with ErrUnknownBackend")
	}
}

func TestDefaultThreadsResolution(t *testing.T) {
	want := runtime.GOMAXPROCS(0)
	if want > 4 {
		want = 4
	}
	if got := mnn.DefaultThreads(); got != want {
		t.Fatalf("DefaultThreads() = %d, want min(GOMAXPROCS, 4) = %d", got, want)
	}
	// No WithThreads → auto.
	eng := openTiny(t)
	if got := eng.Threads(); got != want {
		t.Errorf("default engine threads = %d, want %d", got, want)
	}
	// WithThreads(0) → auto, not an error and not 1.
	eng0 := openTiny(t, mnn.WithThreads(0))
	if got := eng0.Threads(); got != want {
		t.Errorf("WithThreads(0) threads = %d, want %d", got, want)
	}
	// Explicit counts are preserved.
	eng2 := openTiny(t, mnn.WithThreads(2))
	if got := eng2.Threads(); got != 2 {
		t.Errorf("WithThreads(2) threads = %d, want 2", got)
	}
}
