// Package mnn is a pure-Go reproduction of MNN, the universal and efficient
// mobile inference engine of Jiang et al. (MLSys 2020).
//
// The package exposes the engine's user-facing workflow:
//
//	graph, _ := mnn.BuildNetwork("mobilenet-v1")      // or LoadModel(r)
//	_ = mnn.Optimize(graph)                           // offline fusion passes
//	interp := mnn.NewInterpreter(graph)
//	sess, _ := interp.CreateSession(mnn.Config{Threads: 4})
//	sess.Input("data").CopyFrom(img)
//	_ = sess.Run()
//	out := sess.Output("prob")
//
// Session creation runs the paper's pre-inference (Section 3.2): shape
// inference, Equation 4–5 backend selection, Equation 2–3 computation-scheme
// selection per convolution, Figure 3 memory planning, and constant
// pre-computation (Winograd weight transforms, packed kernels, command
// buffers). Run is then pure compute.
package mnn

import (
	"fmt"
	"io"
	"os"
	"time"

	"mnn/internal/backend"
	"mnn/internal/converter"
	"mnn/internal/core"
	"mnn/internal/cpu"
	"mnn/internal/device"
	"mnn/internal/graph"
	"mnn/internal/gpusim"
	"mnn/internal/models"
	"mnn/internal/optimizer"
	"mnn/internal/quant"
	"mnn/internal/session"
	"mnn/internal/simclock"
	"mnn/internal/tensor"
)

// Tensor is the dense tensor type of the engine (see Data, Shape, CopyFrom).
type Tensor = tensor.Tensor

// Graph is a loaded or built computational graph.
type Graph = graph.Graph

// SessionStats summarizes what pre-inference decided.
type SessionStats = session.Stats

// ForwardType selects the preferred backend family, mirroring
// MNNForwardType in the original API.
type ForwardType int

const (
	// ForwardAuto lets the Equation 4–5 cost model choose among every
	// backend available on the device.
	ForwardAuto ForwardType = iota
	// ForwardCPU pins execution to the CPU backend.
	ForwardCPU
	// ForwardMetal/OpenCL/OpenGL/Vulkan prefer the given (simulated) GPU
	// API with CPU fallback for unsupported operators.
	ForwardMetal
	ForwardOpenCL
	ForwardOpenGL
	ForwardVulkan
)

// Config parameterizes CreateSession.
type Config struct {
	// Type selects the backend family (default ForwardAuto).
	Type ForwardType
	// Threads is the CPU worker count (default 1; the paper evaluates
	// 1, 2 and 4).
	Threads int
	// DeviceName selects a simulated device profile from Devices()
	// ("MI6", "Mate20", …). Empty means the host: no GPU simulation, cost
	// model uses generic constants.
	DeviceName string
	// Simulate attaches a simulated clock charging the paper's Equation 5
	// costs; read it back with Session.SimulatedMs.
	Simulate bool
	// NoPreparation disables preparation–execution decoupling (Table 2's
	// ablation): every Run re-plans memory and re-creates kernels.
	NoPreparation bool
	// InputShapes overrides declared input shapes.
	InputShapes map[string][]int
}

// Interpreter holds a model, ready to create sessions (mirrors
// MNN::Interpreter).
type Interpreter struct {
	g *graph.Graph
}

// NewInterpreter wraps a graph.
func NewInterpreter(g *Graph) *Interpreter { return &Interpreter{g: g} }

// LoadModel reads a serialized .mnng model.
func LoadModel(r io.Reader) (*Interpreter, error) {
	g, err := converter.Load(r)
	if err != nil {
		return nil, err
	}
	return &Interpreter{g: g}, nil
}

// LoadModelFile reads a serialized model from disk.
func LoadModelFile(path string) (*Interpreter, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}

// Graph exposes the underlying graph (e.g. for inspection or export).
func (ip *Interpreter) Graph() *Graph { return ip.g }

// Session is a prepared inference pipeline bound to backends.
type Session struct {
	s     *session.Session
	clock *simclock.Clock
}

// CreateSession runs pre-inference for the given configuration.
func (ip *Interpreter) CreateSession(cfg Config) (*Session, error) {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	dev := device.Host
	if cfg.DeviceName != "" {
		dev = device.ByName(cfg.DeviceName)
		if dev == nil {
			return nil, fmt.Errorf("mnn: unknown device %q (see mnn.Devices())", cfg.DeviceName)
		}
	}
	var clock *simclock.Clock
	if cfg.Simulate {
		clock = simclock.New()
	}
	backends := []backend.Backend{
		cpu.New(cpu.Config{Threads: cfg.Threads, Device: dev, Clock: clock}),
	}
	addGPU := func(kind backend.Kind, api device.GPUAPI) error {
		if !dev.HasAPI(api) {
			return fmt.Errorf("mnn: device %s has no %s support", dev.Name, kind)
		}
		b, err := gpusim.New(gpusim.Config{Kind: kind, Device: dev, Clock: clock,
			DecoupledEncode: !cfg.NoPreparation, ComputeThreads: cfg.Threads})
		if err != nil {
			return err
		}
		backends = append(backends, b)
		return nil
	}
	switch cfg.Type {
	case ForwardAuto:
		if cfg.DeviceName != "" {
			for _, c := range []struct {
				kind backend.Kind
				api  device.GPUAPI
			}{
				{backend.KindMetal, device.APIMetal},
				{backend.KindOpenCL, device.APIOpenCL},
				{backend.KindOpenGL, device.APIOpenGL},
				{backend.KindVulkan, device.APIVulkan},
			} {
				if dev.HasAPI(c.api) {
					if err := addGPU(c.kind, c.api); err != nil {
						return nil, err
					}
				}
			}
		}
	case ForwardCPU:
		// CPU only.
	case ForwardMetal:
		if err := addGPU(backend.KindMetal, device.APIMetal); err != nil {
			return nil, err
		}
	case ForwardOpenCL:
		if err := addGPU(backend.KindOpenCL, device.APIOpenCL); err != nil {
			return nil, err
		}
	case ForwardOpenGL:
		if err := addGPU(backend.KindOpenGL, device.APIOpenGL); err != nil {
			return nil, err
		}
	case ForwardVulkan:
		if err := addGPU(backend.KindVulkan, device.APIVulkan); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("mnn: unknown forward type %d", cfg.Type)
	}
	s, err := session.New(ip.g, session.Config{
		Backends:      backends,
		InputShapes:   cfg.InputShapes,
		NoPreparation: cfg.NoPreparation,
	})
	if err != nil {
		return nil, err
	}
	return &Session{s: s, clock: clock}, nil
}

// Input returns the writable input tensor.
func (s *Session) Input(name string) *Tensor { return s.s.Input(name) }

// Output returns an output tensor (valid after Run).
func (s *Session) Output(name string) *Tensor { return s.s.Output(name) }

// OutputNames lists declared outputs.
func (s *Session) OutputNames() []string { return s.s.OutputNames() }

// Run executes one inference.
func (s *Session) Run() error { return s.s.Run() }

// RunTimed executes one inference and returns the host wall time.
func (s *Session) RunTimed() (time.Duration, error) {
	t0 := time.Now()
	err := s.s.Run()
	return time.Since(t0), err
}

// Profile is a per-operator timing breakdown (see Session.RunProfiled).
type Profile = session.Profile

// RunProfiled executes one inference measuring every operator.
func (s *Session) RunProfiled() (*Profile, error) { return s.s.RunProfiled() }

// SimulatedMs returns the accumulated simulated time (Config.Simulate).
func (s *Session) SimulatedMs() float64 { return s.clock.TotalMs() }

// ResetSimulatedClock zeroes the simulated clock.
func (s *Session) ResetSimulatedClock() { s.clock.Reset() }

// Stats returns pre-inference statistics (backend assignment, scheme
// counts, arena sizes).
func (s *Session) Stats() SessionStats { return s.s.Stats() }

// Resize re-runs pre-inference for new input shapes.
func (s *Session) Resize(shapes map[string][]int) error { return s.s.Resize(shapes) }

// --- model utilities ---

// BuildNetwork constructs one of the built-in benchmark networks:
// mobilenet-v1, mobilenet-v2, squeezenet-v1.0, squeezenet-v1.1, resnet-18,
// resnet-50, inception-v3.
func BuildNetwork(name string) (*Graph, error) { return models.ByName(name) }

// Networks lists the built-in network names.
func Networks() []string { return models.Names() }

// Optimize runs the offline fusion/replacement passes in place.
func Optimize(g *Graph) error { return optimizer.Optimize(g) }

// SaveModel serializes a graph to the binary model format.
func SaveModel(g *Graph, w io.Writer) error { return converter.Save(g, w) }

// SaveModelFile serializes a graph to disk.
func SaveModelFile(g *Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := converter.Save(g, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseJSONModel reads the pseudo-ONNX JSON frontend format.
func ParseJSONModel(r io.Reader) (*Graph, error) { return converter.ParseJSON(r) }

// QuantizeWeights applies int8 post-training weight quantization in place,
// returning the number of tensors quantized and bytes saved.
func QuantizeWeights(g *Graph) (count int, savedBytes int64) { return quant.QuantizeWeights(g) }

// PruneWeights magnitude-prunes conv/FC filters to the target sparsity
// (the model-slimming tool of the paper's future work), returning the
// achieved zero fraction.
func PruneWeights(g *Graph, sparsity float64) float64 {
	return quant.PruneWeights(g, sparsity).Sparsity()
}

// MeasureHostFLOPS micro-benchmarks the basic matrix-multiplication unit
// and returns achieved MACs/second — the auto-tuned replacement for the
// Appendix C capability heuristic (the paper's future work item 1).
func MeasureHostFLOPS() float64 { return core.MeasureHostFLOPS(256, 3).FLOPS }

// RunReference executes the naive reference interpreter (the correctness
// oracle) on the given inputs.
func RunReference(g *Graph, inputs map[string]*Tensor) (map[string]*Tensor, error) {
	return session.RunReference(g, inputs)
}

// Devices lists the simulated device profile names.
func Devices() []string {
	all := device.All()
	names := make([]string, len(all))
	for i, d := range all {
		names[i] = d.Name
	}
	return names
}

// SelectConvScheme exposes the Equation 2–3 scheme decision for one
// convolution configuration (used by the schemetuner example and tooling).
func SelectConvScheme(a *graph.Conv2DAttrs, inputShape []int) core.ConvDecision {
	return core.SelectConvScheme(a, inputShape)
}
