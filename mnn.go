// Package mnn is a pure-Go reproduction of MNN, the universal and efficient
// mobile inference engine of Jiang et al. (MLSys 2020).
//
// The v2 API exposes the engine as a concurrent facade:
//
//	eng, _ := mnn.Open("mobilenet-v1", mnn.WithThreads(4), mnn.WithPoolSize(4))
//	defer eng.Close()
//	out, _ := eng.Infer(ctx, map[string]*mnn.Tensor{"data": img})
//	prob := out["prob"]
//
// Open runs the paper's pre-inference (Section 3.2) — shape inference,
// Equation 4–5 backend selection, Equation 2–3 computation-scheme selection
// per convolution, Figure 3 memory planning, and constant pre-computation
// (Winograd weight transforms, packed kernels, command buffers) — once per
// pooled session. Infer is then pure compute, safe from any number of
// goroutines, and honours context cancellation between pipeline operators.
//
// The v1 Interpreter/Session API remains as thin deprecated wrappers over
// the same core.
package mnn

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"mnn/internal/converter"
	"mnn/internal/core"
	"mnn/internal/device"
	"mnn/internal/graph"
	"mnn/internal/models"
	"mnn/internal/optimizer"
	"mnn/internal/quant"
	"mnn/internal/session"
	"mnn/internal/simclock"
	"mnn/internal/tensor"
)

// Tensor is the dense tensor type of the engine (see Data, Shape, CopyFrom).
type Tensor = tensor.Tensor

// NewTensor allocates a zero-filled float32 NCHW tensor — the shape Infer
// expects for its inputs. Fill it via Data() or CopyFrom.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// Graph is a loaded or built computational graph.
type Graph = graph.Graph

// SessionStats summarizes what pre-inference decided.
type SessionStats = session.Stats

// ForwardType selects the preferred backend family, mirroring
// MNNForwardType in the original API.
type ForwardType int

const (
	// ForwardAuto lets the Equation 4–5 cost model choose among every
	// backend available on the device.
	ForwardAuto ForwardType = iota
	// ForwardCPU pins execution to the CPU backend.
	ForwardCPU
	// ForwardMetal/OpenCL/OpenGL/Vulkan prefer the given (simulated) GPU
	// API with CPU fallback for unsupported operators.
	ForwardMetal
	ForwardOpenCL
	ForwardOpenGL
	ForwardVulkan
)

// Config parameterizes CreateSession.
//
// Deprecated: use Open with functional options (WithThreads, WithDevice, …)
// instead.
type Config struct {
	// Type selects the backend family (default ForwardAuto).
	Type ForwardType
	// Threads is the CPU worker count (default 1; the paper evaluates
	// 1, 2 and 4).
	Threads int
	// DeviceName selects a simulated device profile from Devices()
	// ("MI6", "Mate20", …). Empty means the host: no GPU simulation, cost
	// model uses generic constants.
	DeviceName string
	// Simulate attaches a simulated clock charging the paper's Equation 5
	// costs; read it back with Session.SimulatedMs.
	Simulate bool
	// NoPreparation disables preparation–execution decoupling (Table 2's
	// ablation): every Run re-plans memory and re-creates kernels.
	NoPreparation bool
	// InputShapes overrides declared input shapes.
	InputShapes map[string][]int
}

// Interpreter holds a model, ready to create sessions (mirrors
// MNN::Interpreter).
//
// Deprecated: use Open, which prepares a concurrent Engine directly.
type Interpreter struct {
	g *graph.Graph
}

// NewInterpreter wraps a graph.
//
// Deprecated: use Open(g) instead.
func NewInterpreter(g *Graph) *Interpreter { return &Interpreter{g: g} }

// LoadGraph reads a serialized .mnng model into a graph.
func LoadGraph(r io.Reader) (*Graph, error) { return converter.Load(r) }

// LoadGraphFile reads a serialized .mnng model from disk into a graph.
func LoadGraphFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return converter.Load(f)
}

// LoadModel reads a serialized .mnng model.
//
// Deprecated: use LoadGraph (for the graph) or Open (for an engine) instead.
func LoadModel(r io.Reader) (*Interpreter, error) {
	g, err := converter.Load(r)
	if err != nil {
		return nil, err
	}
	return &Interpreter{g: g}, nil
}

// LoadModelFile reads a serialized model from disk.
//
// Deprecated: use LoadGraphFile or Open(path) instead.
func LoadModelFile(path string) (*Interpreter, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}

// Graph exposes the underlying graph (e.g. for inspection or export).
func (ip *Interpreter) Graph() *Graph { return ip.g }

// Session is a prepared inference pipeline bound to backends.
//
// Deprecated: use Engine, whose Infer method is additionally safe for
// concurrent use and context-aware.
type Session struct {
	s     *session.Session
	clock *simclock.Clock
}

// CreateSession runs pre-inference for the given configuration. It is a
// thin wrapper over the same core Open uses (pool size 1, no checkout).
//
// Deprecated: use Open with functional options instead.
func (ip *Interpreter) CreateSession(cfg Config) (*Session, error) {
	ec := engineConfig{
		forward:     cfg.Type,
		threads:     cfg.Threads,
		deviceName:  cfg.DeviceName,
		simulate:    cfg.Simulate,
		poolSize:    1,
		inputShapes: cfg.InputShapes,
		noPrep:      cfg.NoPreparation,
	}
	if ec.threads < 1 {
		ec.threads = 1
	}
	var clock *simclock.Clock
	if cfg.Simulate {
		clock = simclock.New()
	}
	s, err := newPreparedSession(ip.g, ec, clock)
	if err != nil {
		return nil, err
	}
	return &Session{s: s, clock: clock}, nil
}

// Input returns the writable input tensor.
func (s *Session) Input(name string) *Tensor { return s.s.Input(name) }

// Output returns an output tensor (valid after Run).
func (s *Session) Output(name string) *Tensor { return s.s.Output(name) }

// OutputNames lists declared outputs.
func (s *Session) OutputNames() []string { return s.s.OutputNames() }

// Run executes one inference.
func (s *Session) Run() error { return s.s.Run(context.Background()) }

// Close releases the session's persistent worker pool. The session keeps
// working afterwards with inline (single-threaded) execution. Idempotent.
func (s *Session) Close() error { return s.s.Close() }

// RunTimed executes one inference and returns the host wall time.
func (s *Session) RunTimed() (time.Duration, error) {
	t0 := time.Now()
	err := s.s.Run(context.Background())
	return time.Since(t0), err
}

// Profile is a per-operator timing breakdown (see Engine.InferProfiled).
type Profile = session.Profile

// RunProfiled executes one inference measuring every operator.
func (s *Session) RunProfiled() (*Profile, error) {
	return s.s.RunProfiled(context.Background())
}

// SimulatedMs returns the accumulated simulated time (Config.Simulate).
func (s *Session) SimulatedMs() float64 { return s.clock.TotalMs() }

// ResetSimulatedClock zeroes the simulated clock.
func (s *Session) ResetSimulatedClock() { s.clock.Reset() }

// Stats returns pre-inference statistics (backend assignment, scheme
// counts, arena sizes).
func (s *Session) Stats() SessionStats { return s.s.Stats() }

// Resize re-runs pre-inference for new input shapes.
func (s *Session) Resize(shapes map[string][]int) error { return s.s.Resize(shapes) }

// --- model utilities ---

// BuildNetwork constructs one of the built-in benchmark networks:
// mobilenet-v1, mobilenet-v2, squeezenet-v1.0, squeezenet-v1.1, resnet-18,
// resnet-50, inception-v3, vgg-16. Unknown names fail with ErrUnknownNetwork.
func BuildNetwork(name string) (*Graph, error) {
	g, err := models.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %q (see mnn.Networks())", ErrUnknownNetwork, name)
	}
	return g, nil
}

// Networks lists the built-in network names.
func Networks() []string { return models.Names() }

// Optimize runs the offline fusion/replacement passes in place.
func Optimize(g *Graph) error { return optimizer.Optimize(g) }

// SaveModel serializes a graph to the binary model format.
func SaveModel(g *Graph, w io.Writer) error { return converter.Save(g, w) }

// SaveModelFile serializes a graph to disk.
func SaveModelFile(g *Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := converter.Save(g, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseJSONModel reads the pseudo-ONNX JSON frontend format.
func ParseJSONModel(r io.Reader) (*Graph, error) { return converter.ParseJSON(r) }

// QuantizeWeights applies int8 post-training weight quantization in place,
// returning the number of tensors quantized and bytes saved.
func QuantizeWeights(g *Graph) (count int, savedBytes int64) { return quant.QuantizeWeights(g) }

// Calibrate runs the sample inputs through an fp32 CPU session and records
// symmetric per-tensor activation scales (max-abs observer) into the graph,
// where SaveModel persists them. Engines opened from the calibrated graph
// with WithPrecision(PrecisionInt8) then quantize activations with fixed
// scales instead of deriving them per sample.
func Calibrate(g *Graph, samples []map[string]*Tensor) (map[string]float32, error) {
	return quant.Calibrate(g, samples)
}

// CalibrateSynthetic calibrates with n deterministic random samples shaped
// from the graph's declared inputs (mnnconvert -calibrate).
func CalibrateSynthetic(g *Graph, n int, seed uint64) (map[string]float32, error) {
	return quant.CalibrateSynthetic(g, n, seed)
}

// PruneWeights magnitude-prunes conv/FC filters to the target sparsity
// (the model-slimming tool of the paper's future work), returning the
// achieved zero fraction.
func PruneWeights(g *Graph, sparsity float64) float64 {
	return quant.PruneWeights(g, sparsity).Sparsity()
}

// MeasureHostFLOPS micro-benchmarks the basic matrix-multiplication unit
// and returns achieved MACs/second — the auto-tuned replacement for the
// Appendix C capability heuristic (the paper's future work item 1).
func MeasureHostFLOPS() float64 { return core.MeasureHostFLOPS(256, 3).FLOPS }

// RunReference executes the naive reference interpreter (the correctness
// oracle) on the given inputs.
func RunReference(g *Graph, inputs map[string]*Tensor) (map[string]*Tensor, error) {
	return session.RunReference(g, inputs)
}

// Devices lists the simulated device profile names.
func Devices() []string {
	all := device.All()
	names := make([]string, len(all))
	for i, d := range all {
		names[i] = d.Name
	}
	return names
}

// SelectConvScheme exposes the Equation 2–3 scheme decision for one
// convolution configuration (used by the schemetuner example and tooling).
func SelectConvScheme(a *graph.Conv2DAttrs, inputShape []int) core.ConvDecision {
	return core.SelectConvScheme(a, inputShape)
}
