package mnn

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sync/atomic"

	"mnn/internal/backend"
	"mnn/internal/converter"
	"mnn/internal/core"
	"mnn/internal/cpu"
	"mnn/internal/device"
	"mnn/internal/fault"
	"mnn/internal/gpusim"
	"mnn/internal/graph"
	"mnn/internal/models"
	"mnn/internal/optimizer"
	"mnn/internal/sched"
	"mnn/internal/session"
	"mnn/internal/simclock"
	"mnn/internal/tensor"
	"mnn/internal/tuner"
)

// Engine is the concurrent v2 facade over the paper's prepared-session
// design. Open runs the full pre-inference (shape inference, Equation 4–5
// backend selection, Equation 2–3 scheme selection, Figure 3 memory
// planning, constant pre-computation) once per pooled session; Infer is then
// pure compute and safe to call from any number of goroutines — each call
// checks out a prepared session, copies the inputs in, runs, and copies the
// outputs back out, so callers never share tensors with the engine.
//
//	eng, err := mnn.Open("mobilenet-v1", mnn.WithThreads(4), mnn.WithPoolSize(4))
//	if err != nil { ... }
//	defer eng.Close()
//	out, err := eng.Infer(ctx, map[string]*mnn.Tensor{"data": img})
type Engine struct {
	g      *graph.Graph
	cfg    engineConfig
	clock  *simclock.Clock
	pool   chan *session.Session
	quit   chan struct{}
	closed atomic.Bool

	// fi is the armed fault injector (nil when injection is disabled).
	fi *fault.Injector
	// panics counts contained kernel panics; rebuilds counts poisoned
	// sessions successfully replaced in the pool.
	panics   atomic.Int64
	rebuilds atomic.Int64

	inputNames  []string
	outputNames []string
	inputShapes map[string][]int
	stats       session.Stats
}

// Open prepares a concurrent inference engine. The model may be:
//
//   - a *Graph, already built or loaded;
//   - a string naming a built-in network (see Networks()) or the path of a
//     serialized .mnng model file;
//   - an io.Reader streaming the binary model format.
//
// Options configure threads, backend family, simulated device, pool size and
// the preparation ablation; see the With* functions. Open fails with
// ErrUnknownNetwork, ErrUnknownDevice or ErrUnknownBackend (all wrap-aware).
func Open(model any, opts ...Option) (*Engine, error) {
	cfg := defaultEngineConfig()
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.threads == 0 {
		cfg.threads = DefaultThreads()
	}
	if cfg.noPrep {
		// The ablation path re-prepares inside every run and mutates session
		// state; a pool of them would just multiply the measurement noise.
		cfg.poolSize = 1
	}
	if cfg.fi == nil {
		cfg.fi = fault.NewInjector(cfg.faultPlan) // nil plan → nil injector
	}
	if cfg.dynamic {
		// Dynamic shapes re-derive geometry on prepared CPU kernels; the
		// ablation path re-prepares anyway and the int8/GPU paths bake
		// shape-dependent state (quant plans, staging schedules) into the
		// prepared form.
		if cfg.noPrep {
			return nil, fmt.Errorf("mnn: WithMaxInputShapes is incompatible with WithoutPreparation")
		}
		if cfg.precision == PrecisionInt8 {
			return nil, fmt.Errorf("mnn: WithMaxInputShapes requires fp32 precision")
		}
		if cfg.forward != ForwardAuto && cfg.forward != ForwardCPU {
			return nil, fmt.Errorf("%w: dynamic shapes require the CPU backend", ErrUnknownBackend)
		}
		cfg.forward = ForwardCPU
	}
	g, err := resolveModel(model)
	if err != nil {
		return nil, err
	}
	var tunedShapes graph.ShapeMap
	if cfg.tuning != TuningHeuristic {
		// Run the kernel search once; every pooled session shares the plan.
		var err error
		tunedShapes, err = graph.InferShapes(g, cfg.inputShapes)
		if err != nil {
			return nil, err
		}
		cfg.tuningPlan, err = tuner.New(g, tunedShapes, tuner.Config{
			Mode:      cfg.tuning,
			Threads:   cfg.threads,
			Int8:      cfg.precision == PrecisionInt8,
			CachePath: cfg.tuningCache,
			ModelKey:  tuningModelKey(g),
			Fault:     cfg.fi,
		})
		if err != nil {
			return nil, err
		}
	}
	if cfg.precision == PrecisionInt8 {
		// The int8 kernels are CPU-only; an explicit GPU forward type is a
		// configuration error, ForwardAuto just schedules on the CPU.
		if cfg.forward != ForwardAuto && cfg.forward != ForwardCPU {
			return nil, fmt.Errorf("%w: int8 precision requires the CPU backend", ErrUnknownBackend)
		}
		cfg.forward = ForwardCPU
		// The partition must follow the schemes that will actually run:
		// Int8ConvSupported depends on the chosen algorithm, so a tuned
		// engine plans from the tuner's decisions.
		plan, err := optimizer.PlanInt8With(g, cfg.inputShapes, schemeResolver(cfg.tuningPlan))
		if err != nil {
			return nil, err
		}
		cfg.int8Plan = plan.Int8
		cfg.nonNegActs = plan.NonNegActs
		cfg.actScales = g.ActScales
	}
	if cfg.tuningPlan != nil && cfg.deviceName != "" && cfg.forward != ForwardCPU {
		// Score the backend schedule once; sessions share it (after the int8
		// block, which may have pinned the forward type to CPU). Without a
		// device profile no GPU backend can exist, so the common CPU-only
		// Open skips the throwaway provider stack entirely.
		cfg.assignment, cfg.backendCosts, err = scoredAssignment(g, tunedShapes, cfg)
		if err != nil {
			return nil, err
		}
	}
	var clock *simclock.Clock
	if cfg.simulate {
		clock = simclock.New()
	}
	e := &Engine{
		g:     g,
		cfg:   cfg,
		clock: clock,
		fi:    cfg.fi,
		pool:  make(chan *session.Session, cfg.poolSize),
		quit:  make(chan struct{}),
	}
	for i := 0; i < cfg.poolSize; i++ {
		s, err := newPreparedSession(g, cfg, clock)
		if err != nil {
			// Sessions already pooled hold parked worker goroutines; a
			// failed Open must release them or they leak for good.
			e.drainPool()
			return nil, err
		}
		if i == 0 {
			e.stats = s.Stats()
			e.inputNames = append([]string(nil), g.InputNames...)
			e.outputNames = append([]string(nil), g.OutputNames...)
			e.inputShapes = make(map[string][]int, len(g.InputNames))
			for _, name := range g.InputNames {
				if t := s.Input(name); t != nil {
					e.inputShapes[name] = append([]int(nil), t.Shape()...)
				}
			}
		}
		e.pool <- s
	}
	return e, nil
}

// tuningModelKey identifies a graph inside the tuning cache. Decisions are
// re-validated against the legality predicates on load, so a key collision
// can cost performance but never correctness; the node count guards the
// common collision (two differently-sized graphs sharing a name).
func tuningModelKey(g *graph.Graph) string {
	name := g.Name
	if name == "" {
		name = "unnamed"
	}
	return fmt.Sprintf("%s+%dnodes", name, len(g.Nodes))
}

// schemeResolver adapts a (possibly nil) tuning plan to the optimizer's
// scheme-resolver hook; nil keeps the heuristic.
func schemeResolver(p *tuner.Plan) func(n *graph.Node, inShape []int) core.ConvDecision {
	if p == nil {
		return nil
	}
	return p.SchemeFor
}

// resolveModel turns Open's polymorphic model argument into a graph.
func resolveModel(model any) (*graph.Graph, error) {
	switch m := model.(type) {
	case *graph.Graph:
		if m == nil {
			return nil, fmt.Errorf("%w: nil graph", ErrUnknownNetwork)
		}
		return m, nil
	case string:
		if g, err := models.ByName(m); err == nil {
			return g, nil
		}
		if st, err := os.Stat(m); err == nil {
			if st.IsDir() {
				return nil, fmt.Errorf("%w: %q is a directory, not a model file", ErrUnknownNetwork, m)
			}
			return LoadGraphFile(m)
		}
		return nil, fmt.Errorf("%w: %q is neither a built-in network (see mnn.Networks()) nor a model file", ErrUnknownNetwork, m)
	case io.Reader:
		return converter.Load(m)
	default:
		return nil, fmt.Errorf("%w: unsupported model type %T (want *mnn.Graph, string or io.Reader)", ErrUnknownNetwork, model)
	}
}

// newBackends assembles the backend stack for one prepared session: the CPU
// fallback plus whatever simulated GPU APIs the configuration requests. The
// clock (may be nil) is shared across the whole pool so simulated time
// aggregates over concurrent inferences.
func newBackends(cfg engineConfig, clock *simclock.Clock) ([]backend.Backend, error) {
	dev := device.Host
	if cfg.deviceName != "" {
		dev = device.ByName(cfg.deviceName)
		if dev == nil {
			return nil, fmt.Errorf("%w: %q (see mnn.Devices())", ErrUnknownDevice, cfg.deviceName)
		}
	}
	// Each session owns one persistent worker pool; every kernel of every
	// operator dispatches onto it, so steady-state inference spawns no
	// goroutines. Session.Close (via Engine.Close) releases the workers.
	var force func(*graph.Node, core.ConvDecision) core.ConvDecision
	var gemm func(*graph.Node) (bool, bool)
	if cfg.tuningPlan != nil {
		force = cfg.tuningPlan.ForceScheme
		gemm = cfg.tuningPlan.GemmScheme
	}
	backends := []backend.Backend{
		cpu.New(cpu.Config{Threads: cfg.threads, Device: dev, Clock: clock,
			Pool:        sched.New(cfg.threads),
			ForceScheme: force,
			GemmScheme:  gemm,
			Int8:        cfg.precision == PrecisionInt8, QuantPlan: cfg.int8Plan,
			ActScales: cfg.actScales, NonNegActs: cfg.nonNegActs}),
	}
	addGPU := func(kind backend.Kind, api device.GPUAPI) error {
		if !dev.HasAPI(api) {
			return fmt.Errorf("%w: device %s has no %s support", ErrUnknownBackend, dev.Name, kind)
		}
		b, err := gpusim.New(gpusim.Config{Kind: kind, Device: dev, Clock: clock,
			DecoupledEncode: !cfg.noPrep, ComputeThreads: cfg.threads,
			ForceScheme: force})
		if err != nil {
			return err
		}
		backends = append(backends, b)
		return nil
	}
	switch cfg.forward {
	case ForwardAuto:
		if cfg.deviceName != "" {
			for _, c := range []struct {
				kind backend.Kind
				api  device.GPUAPI
			}{
				{backend.KindMetal, device.APIMetal},
				{backend.KindOpenCL, device.APIOpenCL},
				{backend.KindOpenGL, device.APIOpenGL},
				{backend.KindVulkan, device.APIVulkan},
			} {
				if dev.HasAPI(c.api) {
					if err := addGPU(c.kind, c.api); err != nil {
						return nil, err
					}
				}
			}
		}
	case ForwardCPU:
		// CPU only.
	case ForwardMetal:
		if err := addGPU(backend.KindMetal, device.APIMetal); err != nil {
			return nil, err
		}
	case ForwardOpenCL:
		if err := addGPU(backend.KindOpenCL, device.APIOpenCL); err != nil {
			return nil, err
		}
	case ForwardOpenGL:
		if err := addGPU(backend.KindOpenGL, device.APIOpenGL); err != nil {
			return nil, err
		}
	case ForwardVulkan:
		if err := addGPU(backend.KindVulkan, device.APIVulkan); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: forward type %d", ErrUnknownBackend, cfg.forward)
	}
	return backends, nil
}

// newPreparedSession builds one session, running pre-inference unless the
// configuration disables it.
func newPreparedSession(g *graph.Graph, cfg engineConfig, clock *simclock.Clock) (*session.Session, error) {
	backends, err := newBackends(cfg, clock)
	if err != nil {
		return nil, err
	}
	s, err := session.New(g, session.Config{
		Backends:      backends,
		Assignment:    cfg.assignment,
		BackendCosts:  cfg.backendCosts,
		InputShapes:   cfg.inputShapes,
		NoPreparation: cfg.noPrep,
		Fault:         cfg.fi,
	})
	if err != nil {
		// session.New owns no backend resources on failure; release the
		// worker pools we just created so a failed prepare can't leak them.
		for _, b := range backends {
			if c, ok := b.(interface{ Close() error }); ok {
				c.Close()
			}
		}
		return nil, err
	}
	if cfg.dynamic {
		// Done here (not in Open's pool loop) so panic-poisoned sessions
		// rebuilt mid-serve come back dynamic too.
		if err := s.EnableDynamic(); err != nil {
			s.Close()
			return nil, fmt.Errorf("mnn: dynamic shapes: %w", err)
		}
	}
	return s, nil
}

// scoredAssignment runs the tuner's per-node backend scoring (compute +
// t_schedule + staging transfers instead of the whole-graph Equation 4
// argmin) against a throwaway backend stack, once per Open; every pooled
// session reuses the assignment and its per-backend cost totals. Returns
// nils (keep the built-in selection) when only the CPU backend is
// configured.
func scoredAssignment(g *graph.Graph, shapes graph.ShapeMap, cfg engineConfig) (core.Assignment, core.BackendCosts, error) {
	backends, err := newBackends(cfg, nil)
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		for _, b := range backends {
			if c, ok := b.(interface{ Close() error }); ok {
				c.Close()
			}
		}
	}()
	if len(backends) < 2 {
		return nil, nil, nil
	}
	providers := make([]core.CostProvider, len(backends))
	for i, b := range backends {
		providers[i] = b
	}
	assign, costs := tuner.ScoreBackends(g, shapes, providers)
	return assign, costs, nil
}

// Infer runs one inference. It is safe for concurrent use: up to PoolSize
// inferences run truly in parallel, further callers queue for a session.
// The inputs map must provide every declared graph input with the prepared
// shape (ErrInputShape otherwise); returned tensors are fresh NCHW copies
// owned by the caller. A cancelled or expired ctx aborts promptly — while
// queueing, or between pipeline operators mid-run — with ErrCancelled.
func (e *Engine) Infer(ctx context.Context, inputs map[string]*Tensor) (out map[string]*Tensor, err error) {
	s, err := e.checkout(ctx)
	if err != nil {
		return nil, err
	}
	defer func() { e.finish(s, recover(), &err) }()
	if err := e.faultHit(); err != nil {
		return nil, err
	}
	if err := e.fillInputs(s, inputs); err != nil {
		return nil, err
	}
	if err := s.Run(ctx); err != nil {
		return nil, e.wrapRunErr(err)
	}
	return e.copyOutputs(s), nil
}

// InferInto is Infer writing results into caller-provided output tensors
// instead of allocating fresh copies: outputs must map every declared graph
// output to a tensor of the produced shape (any layout). Together with the
// planner-backed workspaces and the persistent worker pool this makes
// steady-state inference fully allocation-free — the serving tier reuses
// response buffers across requests instead of feeding the GC.
func (e *Engine) InferInto(ctx context.Context, inputs, outputs map[string]*Tensor) (err error) {
	s, err := e.checkout(ctx)
	if err != nil {
		return err
	}
	defer func() { e.finish(s, recover(), &err) }()
	if err := e.faultHit(); err != nil {
		return err
	}
	if err := e.fillInputs(s, inputs); err != nil {
		return err
	}
	for _, name := range e.outputNames {
		dst := outputs[name]
		if dst == nil {
			return fmt.Errorf("%w: missing output tensor %q (model outputs: %v)", ErrInputShape, name, e.outputNames)
		}
		if !tensor.EqualShape(dst.Shape(), s.Output(name).Shape()) {
			return fmt.Errorf("%w: output %q has shape %v, engine produces %v",
				ErrInputShape, name, dst.Shape(), s.Output(name).Shape())
		}
	}
	if err := s.Run(ctx); err != nil {
		return e.wrapRunErr(err)
	}
	for _, name := range e.outputNames {
		outputs[name].CopyFrom(s.Output(name))
	}
	return nil
}

// InferProfiled is Infer with a per-operator timing breakdown.
func (e *Engine) InferProfiled(ctx context.Context, inputs map[string]*Tensor) (out map[string]*Tensor, prof *Profile, err error) {
	s, err := e.checkout(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer func() { e.finish(s, recover(), &err) }()
	if err := e.faultHit(); err != nil {
		return nil, nil, err
	}
	if err := e.fillInputs(s, inputs); err != nil {
		return nil, nil, err
	}
	p, err := s.RunProfiled(ctx)
	if err != nil {
		return nil, nil, e.wrapRunErr(err)
	}
	return e.copyOutputs(s), p, nil
}

// faultHit evaluates the engine.infer injection site (nil injector: one
// pointer test, no allocations). An injected panic unwinds into finish's
// containment barrier like a real kernel panic would.
func (e *Engine) faultHit() error {
	if e.fi == nil {
		return nil
	}
	if o := e.fi.Hit(fault.SiteEngineInfer, e.g.Name); o != nil {
		if err := o.Apply(); err != nil {
			return fmt.Errorf("mnn: infer %q: %w", e.g.Name, err)
		}
	}
	return nil
}

// wrapRunErr maps session.Run errors onto the public error surface: a
// contained kernel panic becomes *KernelPanicError (wrapping ErrKernelPanic)
// and cancellation becomes ErrCancelled; everything else passes through.
func (e *Engine) wrapRunErr(err error) error {
	var pe *sched.PanicError
	if errors.As(err, &pe) {
		return &KernelPanicError{Op: pe.Op, Value: pe.Value, Stack: pe.Stack}
	}
	return wrapCancel(err)
}

// finish settles a checked-out session after an inference attempt. The
// healthy path checks the session back in. A kernel panic — whether it
// surfaced as an error from the session barrier or unwound to this frame —
// counts against the engine and poisons the session: it is closed and a
// freshly prepared replacement takes its pool slot, so one bad inference
// never degrades the sessions later requests run on.
func (e *Engine) finish(s *session.Session, recovered any, errp *error) {
	if recovered != nil {
		kp, ok := recovered.(*KernelPanicError)
		if !ok {
			if pe, isPE := recovered.(*sched.PanicError); isPE {
				kp = &KernelPanicError{Op: pe.Op, Value: pe.Value, Stack: pe.Stack}
			} else {
				kp = &KernelPanicError{Op: e.g.Name, Value: recovered, Stack: debug.Stack()}
			}
		}
		if kp.Op == "" {
			kp.Op = e.g.Name
		}
		*errp = kp
		e.panics.Add(1)
		e.poisonAndRebuild(s)
		return
	}
	// The nil guard keeps errors.As — whose any-typed target forces a heap
	// escape — off the allocation-free happy path.
	if *errp != nil {
		var kp *KernelPanicError
		if errors.As(*errp, &kp) {
			e.panics.Add(1)
			e.poisonAndRebuild(s)
			return
		}
	}
	e.checkin(s)
}

// poisonAndRebuild retires a session a panic escaped from and replaces it
// with a freshly prepared one. If the rebuild itself fails, the closed
// session is returned to the pool instead — a closed session still runs
// correctly (inline execution), so pool capacity is preserved either way.
func (e *Engine) poisonAndRebuild(s *session.Session) {
	s.Close()
	if e.closed.Load() {
		return
	}
	ns, err := newPreparedSession(e.g, e.cfg, e.clock)
	if err != nil {
		e.checkin(s)
		return
	}
	e.rebuilds.Add(1)
	e.checkin(ns)
}

// KernelPanics reports how many kernel panics the engine has contained.
func (e *Engine) KernelPanics() int64 { return e.panics.Load() }

// SessionRebuilds reports how many poisoned sessions were replaced.
func (e *Engine) SessionRebuilds() int64 { return e.rebuilds.Load() }

// checkout acquires a prepared session, honouring cancellation and Close.
func (e *Engine) checkout(ctx context.Context) (*session.Session, error) {
	if e.closed.Load() {
		return nil, ErrEngineClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCancelled, err)
	}
	select {
	case s := <-e.pool:
		// The select picks uniformly among ready cases, so a checked-in
		// session can win against an already-closed quit channel; re-check
		// so queued callers never start new work after Close. The dropped
		// session must be released here — Close may have drained the pool
		// already, and parked pool workers are never garbage-collected.
		if e.closed.Load() {
			s.Close()
			return nil, ErrEngineClosed
		}
		return s, nil
	case <-e.quit:
		return nil, ErrEngineClosed
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: %v", ErrCancelled, ctx.Err())
	}
}

// checkin returns a session to the pool, or releases it once the engine is
// closed so the pool drains for good.
func (e *Engine) checkin(s *session.Session) {
	if e.closed.Load() {
		s.Close()
		return
	}
	e.pool <- s
	// Close may have set closed and drained the pool between the check and
	// the send, which would park this session (and its worker goroutines)
	// forever; re-check and re-drain. Both sides draining is fine —
	// session.Close is idempotent.
	if e.closed.Load() {
		e.drainPool()
	}
}

// drainPool releases every idle session currently parked in the pool.
func (e *Engine) drainPool() {
	for {
		select {
		case s := <-e.pool:
			s.Close()
		default:
			return
		}
	}
}

// fillInputs validates the request against the prepared shapes and copies
// the caller's tensors into the session. On a dynamic engine the prepared
// shapes are maxima: any input of matching rank with every dim <= the max
// is accepted, and the session's activation shapes are re-derived in place
// before the copy; anything else fails with ErrShapeOutOfPlan *before* a
// single arena byte is touched.
func (e *Engine) fillInputs(s *session.Session, inputs map[string]*Tensor) error {
	for name := range inputs {
		if _, ok := e.inputShapes[name]; !ok {
			return fmt.Errorf("%w: unknown input %q (model inputs: %v)", ErrInputShape, name, e.inputNames)
		}
	}
	if e.cfg.dynamic {
		return e.fillInputsDynamic(s, inputs)
	}
	for _, name := range e.inputNames {
		t, ok := inputs[name]
		if !ok || t == nil {
			return fmt.Errorf("%w: missing input %q", ErrInputShape, name)
		}
		dst := s.Input(name)
		if !tensor.EqualShape(dst.Shape(), t.Shape()) {
			return fmt.Errorf("%w: input %q has shape %v, engine prepared %v", ErrInputShape, name, t.Shape(), dst.Shape())
		}
		dst.CopyFrom(t)
	}
	return nil
}

// fillInputsDynamic is fillInputs' dynamic-shape path. The happy path — a
// shape the session has already derived a plan for — performs zero
// allocations.
func (e *Engine) fillInputsDynamic(s *session.Session, inputs map[string]*Tensor) error {
	for _, name := range e.inputNames {
		t, ok := inputs[name]
		if !ok || t == nil {
			return fmt.Errorf("%w: missing input %q", ErrInputShape, name)
		}
		max := e.inputShapes[name]
		ts := t.Shape()
		if len(ts) != len(max) {
			return fmt.Errorf("%w: input %q has rank %d, plan has rank %d (max shape %v)",
				ErrShapeOutOfPlan, name, len(ts), len(max), max)
		}
		for i, d := range ts {
			if d < 1 || d > max[i] {
				return fmt.Errorf("%w: input %q shape %v exceeds planned max %v at dim %d",
					ErrShapeOutOfPlan, name, ts, max, i)
			}
		}
	}
	if err := s.ApplyInputShapes(inputs); err != nil {
		return fmt.Errorf("%w: %v", ErrShapeOutOfPlan, err)
	}
	for _, name := range e.inputNames {
		s.Input(name).CopyFrom(inputs[name])
	}
	return nil
}

// copyOutputs snapshots the session outputs into caller-owned NCHW tensors.
func (e *Engine) copyOutputs(s *session.Session) map[string]*Tensor {
	out := make(map[string]*Tensor, len(e.outputNames))
	for _, name := range e.outputNames {
		src := s.Output(name)
		dst := tensor.New(src.Shape()...)
		dst.CopyFrom(src)
		out[name] = dst
	}
	return out
}

// wrapCancel maps context cancellation surfaced by session.Run onto the
// ErrCancelled sentinel while passing other errors through.
func wrapCancel(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %v", ErrCancelled, err)
	}
	return err
}

// Close marks the engine closed; subsequent and queued Infer calls return
// ErrEngineClosed. In-flight inferences finish normally. Close is idempotent.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	close(e.quit)
	// Release idle sessions — their worker pools shut down and their arenas
	// can be collected; sessions still checked out are released by checkin.
	e.drainPool()
	return nil
}

// Graph exposes the underlying graph (e.g. for inspection or export).
func (e *Engine) Graph() *Graph { return e.g }

// PoolSize reports how many prepared sessions the engine holds.
func (e *Engine) PoolSize() int { return e.cfg.poolSize }

// Threads reports the resolved CPU worker count per pooled session (the
// WithThreads value, or DefaultThreads() when left at auto).
func (e *Engine) Threads() int { return e.cfg.threads }

// Precision reports the execution precision the engine was opened with.
func (e *Engine) Precision() Precision { return e.cfg.precision }

// Tuning reports the kernel-search mode the engine was opened with.
func (e *Engine) Tuning() TuningMode { return e.cfg.tuning }

// TuningStats summarizes what the kernel search did during Open: how many
// convolutions it covered, how many unique signatures it saw, how many were
// resolved from the tuning cache, and how many candidates were actually
// micro-benchmarked. With TuningHeuristic (the default) only Mode is set.
func (e *Engine) TuningStats() TuningStats {
	if e.cfg.tuningPlan == nil {
		return TuningStats{Mode: e.cfg.tuning.String()}
	}
	return e.cfg.tuningPlan.Report
}

// InputNames lists the declared graph inputs.
func (e *Engine) InputNames() []string { return append([]string(nil), e.inputNames...) }

// OutputNames lists the declared graph outputs.
func (e *Engine) OutputNames() []string { return append([]string(nil), e.outputNames...) }

// InputShape returns the prepared shape of a declared input (nil if unknown).
// On a dynamic engine this is the planned maximum shape.
func (e *Engine) InputShape(name string) []int {
	return append([]int(nil), e.inputShapes[name]...)
}

// DynamicShapes returns the planned maximum input shapes when the engine was
// opened with WithMaxInputShapes, nil otherwise. The serving tier uses this
// to detect that one engine can batch every sequence length up to the max.
func (e *Engine) DynamicShapes() map[string][]int {
	if !e.cfg.dynamic {
		return nil
	}
	out := make(map[string][]int, len(e.inputShapes))
	for name, s := range e.inputShapes {
		out[name] = append([]int(nil), s...)
	}
	return out
}

// Stats returns pre-inference statistics (backend assignment, scheme counts,
// arena sizes) of one pooled session; every session decides identically.
func (e *Engine) Stats() SessionStats { return e.stats }

// MemoryBytes estimates the engine's resident size: the graph's weight
// tensors plus every pooled session's planned arenas (4 bytes per float32
// element). Weights of a shared graph are charged to each engine opened on
// it, so a serving registry's budget accounting errs toward over-counting,
// never silent under-counting.
func (e *Engine) MemoryBytes() int64 {
	var total int64
	for _, w := range e.g.Weights {
		if w != nil {
			total += int64(w.NumElements())
		}
	}
	var arena int64
	for _, n := range e.stats.ArenaFloats {
		arena += int64(n)
	}
	total += arena * int64(e.cfg.poolSize)
	return total * 4
}

// SimulatedMs returns the aggregate simulated time charged by every pooled
// session (WithSimulatedClock); zero without the option.
func (e *Engine) SimulatedMs() float64 { return e.clock.TotalMs() }

// SimulatedByLabel returns the per-operator-label simulated-time breakdown.
func (e *Engine) SimulatedByLabel() map[string]float64 { return e.clock.ByLabel() }

// ResetSimulatedClock zeroes the shared simulated clock.
func (e *Engine) ResetSimulatedClock() { e.clock.Reset() }
