package mnn_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"mnn"
	"mnn/internal/tensor"
)

// openDynamicTransformer opens the transformer built-in planned at the given
// maximum [batch, seqLen, dim] shape.
func openDynamicTransformer(t *testing.T, maxShape []int, opts ...mnn.Option) *mnn.Engine {
	t.Helper()
	opts = append([]mnn.Option{mnn.WithMaxInputShapes(map[string][]int{"tokens": maxShape})}, opts...)
	eng, err := mnn.Open("transformer", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// TestDynamicTransformerMatchesReference plans the transformer once at the
// max shape and runs it at several smaller batch/sequence-length combinations
// without re-preparation, checking each against the reference oracle at that
// exact shape.
func TestDynamicTransformerMatchesReference(t *testing.T) {
	eng := openDynamicTransformer(t, []int{4, 16, 32}, mnn.WithThreads(2))
	g, err := mnn.BuildNetwork("transformer")
	if err != nil {
		t.Fatal(err)
	}
	shapes := [][]int{
		{1, 16, 32}, // max sequence length
		{1, 8, 32},  // shorter sequence
		{2, 12, 32}, // batched, mid length
		{4, 16, 32}, // full plan
		{3, 5, 32},  // odd length, odd batch
		{1, 8, 32},  // repeat shape → cached plan
		{1, 1, 32},  // single token
	}
	for _, shape := range shapes {
		t.Run(fmt.Sprint(shape), func(t *testing.T) {
			in := tensor.New(shape...)
			tensor.FillRandom(in, uint64(31*shape[0]+shape[1]), 1)
			out, err := eng.Infer(context.Background(), map[string]*mnn.Tensor{"tokens": in})
			if err != nil {
				t.Fatal(err)
			}
			if !tensor.EqualShape(out["prob"].Shape(), []int{shape[0], shape[1], 10}) {
				t.Fatalf("output shape %v, want [%d %d 10]", out["prob"].Shape(), shape[0], shape[1])
			}
			ref, err := mnn.RunReference(g, map[string]*mnn.Tensor{"tokens": in})
			if err != nil {
				t.Fatal(err)
			}
			if d := tensor.MaxAbsDiff(ref["prob"], out["prob"]); d > 2e-4 {
				t.Fatalf("dynamic engine differs from reference by %g at shape %v", d, shape)
			}
		})
	}
}

// TestDynamicShapeOutOfPlan pins the satellite-2 contract: a request whose
// shape does not fit the planned maximum must fail with ErrShapeOutOfPlan
// before any arena byte is touched — never silently read or write out of
// plan — and the engine must keep serving in-plan shapes afterwards.
func TestDynamicShapeOutOfPlan(t *testing.T) {
	eng := openDynamicTransformer(t, []int{2, 16, 32})
	ctx := context.Background()
	good := tensor.New(1, 8, 32)
	tensor.FillRandom(good, 1, 1)
	want, err := eng.Infer(ctx, map[string]*mnn.Tensor{"tokens": good})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		shape []int
	}{
		{"seq-too-long", []int{1, 32, 32}},
		{"batch-too-big", []int{3, 16, 32}},
		{"feature-dim-too-big", []int{1, 16, 64}},
		{"rank-mismatch-low", []int{16, 32}},
		{"rank-mismatch-high", []int{1, 1, 16, 32}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := tensor.New(tc.shape...)
			_, err := eng.Infer(ctx, map[string]*mnn.Tensor{"tokens": in})
			if !errors.Is(err, mnn.ErrShapeOutOfPlan) {
				t.Fatalf("Infer(%v) = %v, want ErrShapeOutOfPlan", tc.shape, err)
			}
		})
	}

	// Unknown input names keep the static typed error.
	if _, err := eng.Infer(ctx, map[string]*mnn.Tensor{"wrong": good}); !errors.Is(err, mnn.ErrInputShape) {
		t.Fatalf("unknown input = %v, want ErrInputShape", err)
	}

	// The rejections must not have corrupted the plan: the original in-plan
	// shape still produces bitwise-identical output.
	got, err := eng.Infer(ctx, map[string]*mnn.Tensor{"tokens": good})
	if err != nil {
		t.Fatal(err)
	}
	wd, gd := want["prob"].Data(), got["prob"].Data()
	for i := range wd {
		if wd[i] != gd[i] {
			t.Fatalf("output changed after rejected requests: idx %d, %g vs %g", i, wd[i], gd[i])
		}
	}
}

// TestDynamicOptionValidation: WithMaxInputShapes composes only with the
// plans that can actually re-derive shapes per run.
func TestDynamicOptionValidation(t *testing.T) {
	dyn := mnn.WithMaxInputShapes(map[string][]int{"tokens": {1, 16, 32}})
	// Conv-family networks bake NC4HW4 geometry into their prepared kernels.
	if _, err := mnn.Open("mobilenet-v1", mnn.WithMaxInputShapes(map[string][]int{"data": {1, 3, 224, 224}})); err == nil {
		t.Error("dynamic shapes on a conv network must fail")
	}
	if _, err := mnn.Open("transformer", dyn, mnn.WithoutPreparation()); err == nil {
		t.Error("dynamic + WithoutPreparation must fail")
	}
	if _, err := mnn.Open("transformer", dyn, mnn.WithForwardType(mnn.ForwardOpenCL), mnn.WithDevice("Mate20")); !errors.Is(err, mnn.ErrUnknownBackend) {
		t.Error("dynamic + GPU forward must fail with ErrUnknownBackend")
	}
	// Degenerate dims rejected at Open.
	if _, err := mnn.Open("transformer", mnn.WithMaxInputShapes(map[string][]int{"tokens": {1, 0, 32}})); err == nil {
		t.Error("zero max dim must fail")
	}
}

// TestDynamicInferIntoZeroAllocs pins the zero-allocation steady state for
// dynamic shapes: once a shape's plan is cached, InferInto at that shape —
// including alternating between two shapes — allocates nothing.
func TestDynamicInferIntoZeroAllocs(t *testing.T) {
	eng := openDynamicTransformer(t, []int{2, 16, 32}, mnn.WithThreads(2))
	ctx := context.Background()

	mk := func(shape []int, seed uint64) (map[string]*mnn.Tensor, map[string]*mnn.Tensor) {
		in := tensor.New(shape...)
		tensor.FillRandom(in, seed, 1)
		inputs := map[string]*mnn.Tensor{"tokens": in}
		outputs := map[string]*mnn.Tensor{"prob": tensor.New(shape[0], shape[1], 10)}
		if err := eng.InferInto(ctx, inputs, outputs); err != nil {
			t.Fatal(err)
		}
		return inputs, outputs
	}
	inA, outA := mk([]int{1, 8, 32}, 3)
	inB, outB := mk([]int{2, 16, 32}, 4)

	if allocs := testing.AllocsPerRun(5, func() {
		if err := eng.InferInto(ctx, inA, outA); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("repeat-shape InferInto allocated %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(5, func() {
		if err := eng.InferInto(ctx, inA, outA); err != nil {
			t.Fatal(err)
		}
		if err := eng.InferInto(ctx, inB, outB); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("alternating-shape InferInto allocated %.1f objects/op, want 0", allocs)
	}
}

// TestDynamicTunedMatchesUntuned: a cost-tuned dynamic engine prepares its
// gemm kernels from the tuner's packed-vs-direct decisions; both kernels are
// bitwise-identical, so tuned output must equal untuned output exactly at
// every in-plan shape.
func TestDynamicTunedMatchesUntuned(t *testing.T) {
	plain := openDynamicTransformer(t, []int{2, 16, 32})
	tuned := openDynamicTransformer(t, []int{2, 16, 32}, mnn.WithTuning(mnn.TuningCost))
	if rep := tuned.TuningStats(); rep.GemmOps == 0 {
		t.Fatalf("tuned engine has no gemm decisions: %+v", rep)
	}
	for _, shape := range [][]int{{1, 16, 32}, {2, 7, 32}} {
		in := tensor.New(shape...)
		tensor.FillRandom(in, 17, 1)
		a, err := plain.Infer(context.Background(), map[string]*mnn.Tensor{"tokens": in})
		if err != nil {
			t.Fatal(err)
		}
		b, err := tuned.Infer(context.Background(), map[string]*mnn.Tensor{"tokens": in})
		if err != nil {
			t.Fatal(err)
		}
		ad, bd := a["prob"].Data(), b["prob"].Data()
		for i := range ad {
			if ad[i] != bd[i] {
				t.Fatalf("shape %v: tuned differs from untuned at %d: %g vs %g", shape, i, ad[i], bd[i])
			}
		}
	}
}

// BenchmarkDynamicTransformerInferInto measures steady-state dynamic-shape
// inference at several sequence lengths against one plan-once engine —
// the per-run cost of re-deriving shapes is what's on trial here, since
// the static engine can only ever run one of these lengths.
func BenchmarkDynamicTransformerInferInto(b *testing.B) {
	eng, err := mnn.Open("transformer",
		mnn.WithMaxInputShapes(map[string][]int{"tokens": {1, 16, 32}}), mnn.WithThreads(2))
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	for _, seq := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("seq%d", seq), func(b *testing.B) {
			in := tensor.New(1, seq, 32)
			tensor.FillRandom(in, uint64(seq), 1)
			inputs := map[string]*mnn.Tensor{"tokens": in}
			outputs := map[string]*mnn.Tensor{"prob": tensor.New(1, seq, 10)}
			if err := eng.InferInto(ctx, inputs, outputs); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.InferInto(ctx, inputs, outputs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestDynamicShapesAccessor: DynamicShapes reports the planned maxima on a
// dynamic engine and nil on a static one.
func TestDynamicShapesAccessor(t *testing.T) {
	eng := openDynamicTransformer(t, []int{2, 16, 32})
	ds := eng.DynamicShapes()
	if ds == nil || !tensor.EqualShape(ds["tokens"], []int{2, 16, 32}) {
		t.Fatalf("DynamicShapes() = %v", ds)
	}
	// Returned map is a copy.
	ds["tokens"][0] = 99
	if eng.DynamicShapes()["tokens"][0] != 2 {
		t.Fatal("DynamicShapes must return a copy")
	}

	static, err := mnn.Open("transformer")
	if err != nil {
		t.Fatal(err)
	}
	defer static.Close()
	if static.DynamicShapes() != nil {
		t.Fatal("static engine must report nil DynamicShapes")
	}
}
