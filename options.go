package mnn

import (
	"fmt"
	"runtime"
	"strings"

	"mnn/internal/core"
	"mnn/internal/fault"
	"mnn/internal/tuner"
)

// Option configures an Engine at Open time (functional-options pattern).
// Options replace the v1 Config struct; each validates eagerly so Open can
// fail fast with a typed error.
type Option func(*engineConfig) error

// engineConfig is the resolved configuration an Engine is built from.
type engineConfig struct {
	forward     ForwardType
	threads     int
	deviceName  string
	simulate    bool
	poolSize    int
	inputShapes map[string][]int
	// dynamic marks inputShapes as *maximum* shapes (WithMaxInputShapes):
	// the engine plans once at the max and serves any smaller shape per run.
	dynamic bool
	noPrep  bool
	precision   Precision
	// int8Plan, nonNegActs and actScales are derived from the graph at Open
	// time when precision is int8 (optimizer.PlanInt8 / graph.ActScales).
	int8Plan   map[string]bool
	nonNegActs map[string]bool
	actScales  map[string]float32
	// tuning/tuningCache configure the kernel search; tuningPlan is the
	// committed search result and assignment the per-node backend schedule
	// it scored — both computed once per Open and shared by every pooled
	// session.
	tuning       TuningMode
	tuningCache  string
	tuningPlan   *tuner.Plan
	assignment   core.Assignment
	backendCosts core.BackendCosts
	// faultPlan/fi arm deterministic fault injection (WithFaultPlan /
	// WithFaultInjector). fi == nil is the zero-cost disabled state.
	faultPlan *fault.Plan
	fi        *fault.Injector
}

func defaultEngineConfig() engineConfig {
	return engineConfig{forward: ForwardAuto, threads: 0, poolSize: 1}
}

// DefaultThreads is the CPU worker count used when none is configured:
// min(runtime.GOMAXPROCS(0), 4). Four is the paper's largest evaluated
// thread count (big-core clusters rarely go wider), and capping at
// GOMAXPROCS avoids oversubscribing small hosts.
func DefaultThreads() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// WithThreads sets the CPU worker count per pooled session. Zero (the
// default) resolves to DefaultThreads(); the paper evaluates 1, 2 and 4.
func WithThreads(n int) Option {
	return func(c *engineConfig) error {
		if n < 0 {
			return fmt.Errorf("mnn: WithThreads(%d): thread count must be >= 0 (0 = auto)", n)
		}
		c.threads = n
		return nil
	}
}

// WithForwardType selects the backend family (default ForwardAuto, which
// lets the Equation 4–5 cost model choose).
func WithForwardType(t ForwardType) Option {
	return func(c *engineConfig) error {
		if t < ForwardAuto || t > ForwardVulkan {
			return fmt.Errorf("%w: forward type %d", ErrUnknownBackend, t)
		}
		c.forward = t
		return nil
	}
}

// WithDevice selects a simulated device profile from Devices() ("MI6",
// "Mate20", …). The empty string means the host: no GPU simulation, generic
// cost-model constants.
func WithDevice(name string) Option {
	return func(c *engineConfig) error {
		c.deviceName = name
		return nil
	}
}

// WithSimulatedClock attaches a simulated clock charging the paper's
// Equation 5 costs; read it back with Engine.SimulatedMs. The clock is
// shared by every pooled session, so under concurrent load it accumulates
// the aggregate simulated device time.
func WithSimulatedClock() Option {
	return func(c *engineConfig) error {
		c.simulate = true
		return nil
	}
}

// WithPoolSize sets how many prepared sessions the Engine holds (default 1).
// Pre-inference runs once per pooled session at Open time; Infer then serves
// up to n requests truly concurrently, with further callers queueing.
func WithPoolSize(n int) Option {
	return func(c *engineConfig) error {
		if n < 1 {
			return fmt.Errorf("mnn: WithPoolSize(%d): pool size must be >= 1", n)
		}
		c.poolSize = n
		return nil
	}
}

// Precision selects the numeric precision engines execute in.
type Precision int

const (
	// PrecisionFP32 is the default float32 execution.
	PrecisionFP32 Precision = iota
	// PrecisionInt8 runs eligible convolutions and fully-connected layers on
	// the prepared int8 kernels (symmetric per-channel weight quantization,
	// int32 accumulation), using calibrated activation scales when the model
	// carries them (quant.Calibrate / mnnconvert -calibrate) and per-sample
	// dynamic scales otherwise. Unsupported operators fall back to fp32.
	PrecisionInt8
)

func (p Precision) String() string {
	switch p {
	case PrecisionFP32:
		return "fp32"
	case PrecisionInt8:
		return "int8"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// WithPrecision selects the execution precision (default PrecisionFP32).
// PrecisionInt8 requires the CPU backend: combined with an explicit GPU
// forward type, Open fails with ErrUnknownBackend; with ForwardAuto the
// engine simply schedules everything on the CPU.
func WithPrecision(p Precision) Option {
	return func(c *engineConfig) error {
		if p < PrecisionFP32 || p > PrecisionInt8 {
			return fmt.Errorf("mnn: WithPrecision(%d): unknown precision", p)
		}
		c.precision = p
		return nil
	}
}

// ParsePrecision maps a precision name ("fp32"/"float32", "int8",
// case-insensitive) to its Precision, for CLI flags and the serving tier.
func ParsePrecision(s string) (Precision, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "fp32", "float32", "float":
		return PrecisionFP32, nil
	case "int8", "i8":
		return PrecisionInt8, nil
	default:
		return PrecisionFP32, fmt.Errorf("mnn: unknown precision %q (want fp32 or int8)", s)
	}
}

// WithInputShapes overrides the declared input shapes before pre-inference
// (the v2 equivalent of Config.InputShapes / Session.Resize at open time).
func WithInputShapes(shapes map[string][]int) Option {
	return func(c *engineConfig) error {
		cp := make(map[string][]int, len(shapes))
		for name, s := range shapes {
			cp[name] = append([]int(nil), s...)
		}
		c.inputShapes = cp
		return nil
	}
}

// WithMaxInputShapes is WithInputShapes plus dynamic-shape mode: the engine
// runs pre-inference once at the given maximum shapes — arena, workspaces
// and prepared kernels are all sized for the max — and Infer then accepts
// any input whose rank matches and whose every dim is <= the planned max,
// re-deriving per-run shapes in place without re-preparation. Inputs that
// do not fit the plan fail with ErrShapeOutOfPlan. Dynamic mode requires
// the CPU backend and a graph whose ops all support shape re-derivation
// (the transformer op set: Input, MatMul, LayerNorm, GELU, Transpose,
// Softmax, Eltwise); Open fails otherwise.
func WithMaxInputShapes(shapes map[string][]int) Option {
	return func(c *engineConfig) error {
		cp := make(map[string][]int, len(shapes))
		for name, s := range shapes {
			for _, d := range s {
				if d < 1 {
					return fmt.Errorf("mnn: WithMaxInputShapes: input %q has non-positive dim in %v", name, s)
				}
			}
			cp[name] = append([]int(nil), s...)
		}
		c.inputShapes = cp
		c.dynamic = true
		return nil
	}
}

// WithoutPreparation disables preparation–execution decoupling (Table 2's
// ablation): every Infer re-plans memory and re-creates kernels. It forces
// the pool size to 1 since the ablation path mutates session state per run.
func WithoutPreparation() Option {
	return func(c *engineConfig) error {
		c.noPrep = true
		return nil
	}
}

// TuningMode selects how the engine picks the kernel/algorithm of each
// convolution at prepare time (the paper's semi-automated search).
type TuningMode = tuner.Mode

const (
	// TuningHeuristic keeps the built-in Equation 2–3 selection (default).
	TuningHeuristic = tuner.ModeHeuristic
	// TuningCost scores every legal algorithm with the analytic FLOP/bytes
	// cost model and commits the argmin.
	TuningCost = tuner.ModeCost
	// TuningMeasured micro-benchmarks the top cost-model candidates on the
	// real shapes at Open time and commits the fastest; combined with
	// WithTuningCache the measurements persist, so later Opens prepare fast
	// and deterministically.
	TuningMeasured = tuner.ModeMeasured
)

// TuningStats summarizes what the kernel search did during Open (cache
// hits, micro-benchmarks run); see Engine.TuningStats.
type TuningStats = tuner.Report

// WithTuning selects the kernel-search depth (default TuningHeuristic).
func WithTuning(m TuningMode) Option {
	return func(c *engineConfig) error {
		if m < TuningHeuristic || m > TuningMeasured {
			return fmt.Errorf("mnn: WithTuning(%d): unknown tuning mode", int(m))
		}
		c.tuning = m
		return nil
	}
}

// WithTuningCache sets the persistent tuning-cache file for TuningMeasured:
// measured winners are stored per host, keyed by convolution signature and
// lane count, and reused by later Opens, which then skip every
// micro-benchmark. Models pointed at one file merge entries (a signature
// fully determines its measurement on a host). A stale or corrupt cache
// file is ignored (the search falls back to the cost model and rewrites
// it) — it can never fail or corrupt an Open. Empty (the default) disables
// persistence.
func WithTuningCache(path string) Option {
	return func(c *engineConfig) error {
		c.tuningCache = path
		return nil
	}
}

// ParseTuningMode maps a tuning-mode name ("heuristic"/"off", "cost",
// "measured", case-insensitive) to its TuningMode, for CLI flags and the
// serving tier.
func ParseTuningMode(s string) (TuningMode, error) {
	return tuner.ParseMode(strings.ToLower(strings.TrimSpace(s)))
}

// FaultPlan is a deterministic fault-injection schedule: a seed plus rules
// arming named injection sites (engine.infer, session.kernel, tuner cache
// I/O, …). See ParseFaultPlan for the spec syntax and internal/fault for
// semantics. The zero plan injects nothing.
type FaultPlan = fault.Plan

// FaultInjector is an armed FaultPlan. One injector can be shared across
// engines (and the serving registry) so rule budgets like count=3 are
// global to the process rather than per engine.
type FaultInjector = fault.Injector

// ParseFaultPlan parses a -chaos style spec into a FaultPlan with the given
// seed:
//
//	site=mode[:latency][,p=0.3][,every=N][,after=N][,count=N][,match=substr][;...]
//
// e.g. "engine.infer=panic,after=10,count=3;mesh.transport=connreset,p=0.05".
func ParseFaultPlan(seed uint64, spec string) (*FaultPlan, error) {
	return fault.ParsePlan(seed, spec)
}

// WithFaultPlan arms deterministic fault injection for this engine: the
// plan's rules fire at the engine.infer and session.kernel sites and in the
// tuning-cache I/O during Open. Nil (the default) disables injection; the
// disabled hooks cost one pointer test and zero allocations on the hot
// path. Intended for chaos testing — see the README's fault-tolerance
// section.
func WithFaultPlan(p *FaultPlan) Option {
	return func(c *engineConfig) error {
		c.faultPlan = p
		return nil
	}
}

// WithFaultInjector is WithFaultPlan with an already-armed injector, so
// several engines (or a serving registry and its engines) share one set of
// rule counters. Overrides WithFaultPlan.
func WithFaultInjector(in *FaultInjector) Option {
	return func(c *engineConfig) error {
		c.fi = in
		return nil
	}
}

// ParseForwardType maps a backend name ("auto", "cpu", "metal", "opencl",
// "opengl", "vulkan", case-insensitive) to its ForwardType, for CLI flags.
func ParseForwardType(s string) (ForwardType, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto":
		return ForwardAuto, nil
	case "cpu":
		return ForwardCPU, nil
	case "metal":
		return ForwardMetal, nil
	case "opencl":
		return ForwardOpenCL, nil
	case "opengl":
		return ForwardOpenGL, nil
	case "vulkan":
		return ForwardVulkan, nil
	default:
		return ForwardAuto, fmt.Errorf("%w: %q (want auto, cpu, metal, opencl, opengl or vulkan)", ErrUnknownBackend, s)
	}
}
